// A fixed-capacity ordered set of node ids backed by a two-level bitmap.
//
// This is the storage behind the Machine's free-capacity index. The two
// operations that matter are both on simulator hot paths: membership
// updates happen on every allocate/release (one per touched node), and
// ordered iteration happens on every candidate scan the schedulers run.
// A bitmap gives O(1) insert/erase (vs O(log n) tree rebalancing) and
// cache-friendly ascending iteration — node ids are dense
// [0, node_count), so the bitmap is also the smallest representation.
//
// On wide machines (16k+ nodes) a flat bitmap walk is no longer free:
// a nearly-empty or nearly-full set still touches every word (256 words
// at 16384 nodes) per scan, and the schedulers scan many times per pass.
// A summary level fixes that: one bit per 64-word block (4096 ids) says
// "this block has at least one member", with a cached per-block popcount
// maintaining it under O(1) insert/erase. Scans consult the summary at
// block boundaries and jump straight to the next populated block, so a
// scan costs O(set bits + blocks touched) instead of O(capacity/64).
// The flat walk is kept as a differential reference (`*_linear`), used
// as the production path when the build defines COSCHED_FLAT_INDEX;
// tests/width_index_test.cpp fuzzes the two against each other and
// check_summary() re-derives the summary level from the word array.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace cosched::cluster {

class NodeIdSet {
 public:
  /// Ids per word and words per summary block. A block covers
  /// kWordsPerBlock * 64 = 4096 ids.
  static constexpr std::size_t kWordsPerBlock = 64;

  NodeIdSet() = default;
  explicit NodeIdSet(int capacity) { reset(capacity); }

  /// Empties the set and fixes the id universe to [0, capacity).
  void reset(int capacity) {
    COSCHED_CHECK(capacity >= 0);
    const std::size_t nwords = (static_cast<std::size_t>(capacity) + 63) / 64;
    const std::size_t nblocks = (nwords + kWordsPerBlock - 1) / kWordsPerBlock;
    words_.assign(nwords, 0);
    summary_.assign((nblocks + 63) / 64, 0);
    block_pop_.assign(nblocks, 0);
    capacity_ = capacity;
    size_ = 0;
  }

  int capacity() const { return capacity_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(NodeId id) const {
    COSCHED_CHECK(id >= 0 && id < capacity_);
    return (words_[word_of(id)] >> bit_of(id)) & 1u;
  }

  /// Inserts `id`; returns true if it was newly added.
  bool insert(NodeId id) {
    COSCHED_CHECK(id >= 0 && id < capacity_);
    const std::size_t w = word_of(id);
    std::uint64_t& word = words_[w];
    const std::uint64_t mask = std::uint64_t{1} << bit_of(id);
    if (word & mask) return false;
    word |= mask;
    ++size_;
    const std::size_t blk = w / kWordsPerBlock;
    if (block_pop_[blk]++ == 0) {
      summary_[blk / 64] |= std::uint64_t{1} << (blk % 64);
    }
    return true;
  }

  /// Removes `id`; returns true if it was present.
  bool erase(NodeId id) {
    COSCHED_CHECK(id >= 0 && id < capacity_);
    const std::size_t w = word_of(id);
    std::uint64_t& word = words_[w];
    const std::uint64_t mask = std::uint64_t{1} << bit_of(id);
    if (!(word & mask)) return false;
    word &= ~mask;
    --size_;
    const std::size_t blk = w / kWordsPerBlock;
    if (--block_pop_[blk] == 0) {
      summary_[blk / 64] &= ~(std::uint64_t{1} << (blk % 64));
    }
    return true;
  }

  // --- Ordered scans ---------------------------------------------------------

  /// Smallest member id >= `from`, or capacity() when none remains.
  /// Production dispatch: summary-accelerated unless the build pins the
  /// flat reference path with COSCHED_FLAT_INDEX.
  NodeId next_set_bit(NodeId from) const {
#if defined(COSCHED_FLAT_INDEX)
    return next_set_bit_linear(from);
#else
    return next_set_bit_indexed(from);
#endif
  }

  /// Flat reference scan: walks every word from `from` upward.
  NodeId next_set_bit_linear(NodeId from) const {
    std::uint64_t bits = 0;
    const std::size_t w = first_word_from(from, &bits);
    const std::size_t hit = next_nonempty_word_linear(w, &bits);
    return bit_id(hit, bits);
  }

  /// Summary-accelerated scan: jumps over empty 64-word blocks.
  NodeId next_set_bit_indexed(NodeId from) const {
    std::uint64_t bits = 0;
    const std::size_t w = first_word_from(from, &bits);
    const std::size_t hit = next_nonempty_word_indexed(w, &bits);
    return bit_id(hit, bits);
  }

  /// Forward iteration in ascending id order (the deterministic lowest-id
  /// placement order). The current word's bits are cached in the iterator,
  /// so advancing within a word touches no memory at all; crossing words
  /// goes through the set's block-skipping scan.
  class const_iterator {
   public:
    using value_type = NodeId;

    NodeId operator*() const {
      return static_cast<NodeId>(word_ * 64 +
                                 static_cast<std::size_t>(
                                     std::countr_zero(bits_)));
    }
    const_iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit; no memory access
      if (bits_ == 0) {
        word_ = set_->next_nonempty_word(word_ + 1, &bits_);
      }
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return word_ == other.word_ && bits_ == other.bits_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class NodeIdSet;
    const_iterator(const NodeIdSet* set, std::size_t word) : set_(set) {
      word_ = set_->next_nonempty_word(word, &bits_);
    }

    const NodeIdSet* set_ = nullptr;
    std::size_t word_ = 0;
    std::uint64_t bits_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, words_.size()); }

  friend bool operator==(const NodeIdSet& a, const NodeIdSet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }
  friend bool operator!=(const NodeIdSet& a, const NodeIdSet& b) {
    return !(a == b);
  }

  // --- Introspection ---------------------------------------------------------

  /// Empty blocks jumped over by indexed scans since the last take. Pure
  /// reporting (the `index_blocks_skipped_wall` counter); never feeds a
  /// decision. Only valid when all scans of this set run on one thread —
  /// true for the Machine's sets, which are iterated on the controller
  /// thread only (parallel shards scan a materialized flat array).
  std::uint64_t take_blocks_skipped() const {
    const std::uint64_t n = blocks_skipped_;
    blocks_skipped_ = 0;
    return n;
  }

  /// Re-derives the summary bitmap and per-block popcounts from the word
  /// array and aborts on any mismatch. Fuzz/test hook.
  void check_summary() const {
    for (std::size_t blk = 0; blk < block_pop_.size(); ++blk) {
      std::uint32_t pop = 0;
      const std::size_t lo = blk * kWordsPerBlock;
      const std::size_t hi = std::min(words_.size(), lo + kWordsPerBlock);
      for (std::size_t w = lo; w < hi; ++w) {
        pop += static_cast<std::uint32_t>(std::popcount(words_[w]));
      }
      COSCHED_CHECK_MSG(pop == block_pop_[blk],
                        "block popcount drifted: block "
                            << blk << " caches " << block_pop_[blk]
                            << ", rescan found " << pop);
      const bool bit =
          (summary_[blk / 64] >> (blk % 64)) & 1u;
      COSCHED_CHECK_MSG(bit == (pop > 0),
                        "summary bit drifted on block "
                            << blk << ": bit " << bit << ", popcount " << pop);
    }
    std::uint32_t total = 0;
    for (std::uint32_t pop : block_pop_) total += pop;
    COSCHED_CHECK_MSG(total == static_cast<std::uint32_t>(size_),
                      "size drifted: cached " << size_ << ", popcounts sum to "
                                              << total);
  }

 private:
  static std::size_t word_of(NodeId id) {
    return static_cast<std::size_t>(id) / 64;
  }
  static unsigned bit_of(NodeId id) {
    return static_cast<unsigned>(id) % 64;
  }

  /// Start-of-scan helper: the word holding `from` with bits below `from`
  /// masked off. Returns the word index; `*bits` holds the masked word
  /// (0 when `from` is out of range, with the index past the last word).
  /// When the masked word is empty the index advances past it — the
  /// next_nonempty_word scans reload words whole, so handing them the
  /// exhausted word would resurrect bits below `from`.
  std::size_t first_word_from(NodeId from, std::uint64_t* bits) const {
    if (from < 0) from = 0;
    if (static_cast<std::size_t>(from) >= static_cast<std::size_t>(capacity_)) {
      *bits = 0;
      return words_.size();
    }
    std::size_t w = word_of(from);
    *bits = words_[w] & (~std::uint64_t{0} << bit_of(from));
    if (*bits == 0) ++w;
    return w;
  }

  /// Id of the lowest bit in `bits` at word `w`, or capacity() at end.
  NodeId bit_id(std::size_t w, std::uint64_t bits) const {
    if (w >= words_.size()) return static_cast<NodeId>(capacity_);
    return static_cast<NodeId>(
        w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
  }

  /// First nonempty word at index >= `w` — but when `*bits` is already
  /// nonzero, `w` itself is the answer (the caller pre-masked it). Loads
  /// the winning word's bits into `*bits`; returns words_.size() (with
  /// *bits == 0) when the set has no member at or beyond `w`.
  std::size_t next_nonempty_word(std::size_t w, std::uint64_t* bits) const {
#if defined(COSCHED_FLAT_INDEX)
    return next_nonempty_word_linear(w, bits);
#else
    return next_nonempty_word_indexed(w, bits);
#endif
  }

  std::size_t next_nonempty_word_linear(std::size_t w,
                                        std::uint64_t* bits) const {
    if (*bits != 0) return w;
    const std::size_t nwords = words_.size();
    while (w < nwords) {
      const std::uint64_t word = words_[w];
      if (word != 0) {
        *bits = word;
        return w;
      }
      ++w;
    }
    *bits = 0;
    return nwords;
  }

  std::size_t next_nonempty_word_indexed(std::size_t w,
                                         std::uint64_t* bits) const {
    if (*bits != 0) return w;
    const std::size_t nwords = words_.size();
    while (w < nwords) {
      if ((w % kWordsPerBlock) == 0) {
        // Block boundary: consult the summary and jump straight to the
        // next populated block instead of walking empty words.
        const std::size_t blk = w / kWordsPerBlock;
        std::size_t sw = blk / 64;
        std::uint64_t sbits = summary_[sw] & (~std::uint64_t{0} << (blk % 64));
        while (sbits == 0) {
          if (++sw >= summary_.size()) {
            *bits = 0;
            return nwords;
          }
          sbits = summary_[sw];
        }
        const std::size_t next_blk =
            sw * 64 + static_cast<std::size_t>(std::countr_zero(sbits));
        blocks_skipped_ += next_blk - blk;
        w = next_blk * kWordsPerBlock;
      }
      const std::uint64_t word = words_[w];
      if (word != 0) {
        *bits = word;
        return w;
      }
      ++w;
    }
    *bits = 0;
    return nwords;
  }

  std::vector<std::uint64_t> words_;
  /// Summary level: bit `b` set iff block `b` (64 consecutive words) has
  /// at least one member; maintained by the cached per-block popcounts.
  std::vector<std::uint64_t> summary_;
  std::vector<std::uint32_t> block_pop_;
  int capacity_ = 0;
  int size_ = 0;
  /// Scan telemetry; see take_blocks_skipped().
  mutable std::uint64_t blocks_skipped_ = 0;
};

}  // namespace cosched::cluster
