// A fixed-capacity ordered set of node ids backed by a bitmap.
//
// This is the storage behind the Machine's free-capacity index. The two
// operations that matter are both on simulator hot paths: membership
// updates happen on every allocate/release (one per touched node), and
// ordered iteration happens on every candidate scan the schedulers run.
// A bitmap gives O(1) insert/erase (vs O(log n) tree rebalancing) and
// cache-friendly ascending iteration that skips empty regions a word
// (64 nodes) at a time — node ids are dense [0, node_count), so the
// bitmap is also the smallest representation.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace cosched::cluster {

class NodeIdSet {
 public:
  NodeIdSet() = default;
  explicit NodeIdSet(int capacity) { reset(capacity); }

  /// Empties the set and fixes the id universe to [0, capacity).
  void reset(int capacity) {
    COSCHED_CHECK(capacity >= 0);
    words_.assign((static_cast<std::size_t>(capacity) + 63) / 64, 0);
    capacity_ = capacity;
    size_ = 0;
  }

  int capacity() const { return capacity_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(NodeId id) const {
    COSCHED_CHECK(id >= 0 && id < capacity_);
    return (words_[word_of(id)] >> bit_of(id)) & 1u;
  }

  /// Inserts `id`; returns true if it was newly added.
  bool insert(NodeId id) {
    COSCHED_CHECK(id >= 0 && id < capacity_);
    std::uint64_t& w = words_[word_of(id)];
    const std::uint64_t mask = std::uint64_t{1} << bit_of(id);
    if (w & mask) return false;
    w |= mask;
    ++size_;
    return true;
  }

  /// Removes `id`; returns true if it was present.
  bool erase(NodeId id) {
    COSCHED_CHECK(id >= 0 && id < capacity_);
    std::uint64_t& w = words_[word_of(id)];
    const std::uint64_t mask = std::uint64_t{1} << bit_of(id);
    if (!(w & mask)) return false;
    w &= ~mask;
    --size_;
    return true;
  }

  /// Forward iteration in ascending id order (the deterministic lowest-id
  /// placement order).
  class const_iterator {
   public:
    using value_type = NodeId;

    NodeId operator*() const {
      return static_cast<NodeId>(word_ * 64 +
                                 static_cast<std::size_t>(
                                     std::countr_zero(bits_)));
    }
    const_iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit
      skip_empty_words();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return word_ == other.word_ && bits_ == other.bits_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class NodeIdSet;
    const_iterator(const std::vector<std::uint64_t>* words,
                   std::size_t word)
        : words_(words), word_(word) {
      if (word_ < words_->size()) bits_ = (*words_)[word_];
      skip_empty_words();
    }
    void skip_empty_words() {
      while (bits_ == 0 && ++word_ < words_->size()) {
        bits_ = (*words_)[word_];
      }
      if (bits_ == 0) word_ = words_->size();  // canonical end
    }

    const std::vector<std::uint64_t>* words_ = nullptr;
    std::size_t word_ = 0;
    std::uint64_t bits_ = 0;
  };

  const_iterator begin() const { return const_iterator(&words_, 0); }
  const_iterator end() const { return const_iterator(&words_, words_.size()); }

  friend bool operator==(const NodeIdSet& a, const NodeIdSet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }
  friend bool operator!=(const NodeIdSet& a, const NodeIdSet& b) {
    return !(a == b);
  }

 private:
  static std::size_t word_of(NodeId id) {
    return static_cast<std::size_t>(id) / 64;
  }
  static unsigned bit_of(NodeId id) {
    return static_cast<unsigned>(id) % 64;
  }

  std::vector<std::uint64_t> words_;
  int capacity_ = 0;
  int size_ = 0;
};

}  // namespace cosched::cluster
