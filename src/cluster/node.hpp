// A compute node with SMT (hyper-threaded) cores.
//
// Allocation granularity follows the paper's capability-job model: a job
// requests whole nodes. On each node the *primary* slot is the set of first
// hardware threads of every core (what an exclusive allocation uses); the
// *secondary* slot is the remaining SMT threads, which node-sharing
// strategies may hand to a co-allocated job ("oversubscribing cores through
// hyper-threading"). With smt_per_core == 2 there is exactly one secondary
// slot; higher SMT degrees expose several (R-A3 ablation).
#pragma once

#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace cosched::cluster {

/// Hardware shape of a node. Homogeneous across a partition in this model.
struct NodeConfig {
  int cores = 32;          ///< physical cores
  int smt_per_core = 2;    ///< hardware threads per core (1 = no SMT)
  int memory_gb = 128;     ///< for future memory-aware policies

  int hardware_threads() const { return cores * smt_per_core; }
  /// Number of job slots: 1 primary + (smt_per_core - 1) secondaries.
  int slots() const { return smt_per_core; }
};

enum class NodeState : std::int8_t {
  kIdle,     ///< no job
  kBusy,     ///< at least the primary slot is taken
  kDown,     ///< failed / drained; not allocatable (failure injection)
};

/// One node's allocation state. Slot 0 is the primary.
class Node {
 public:
  Node(NodeId id, const NodeConfig& config);

  NodeId id() const { return id_; }
  const NodeConfig& config() const { return config_; }
  NodeState state() const { return state_; }

  bool is_idle() const { return state_ == NodeState::kIdle; }
  bool is_down() const { return state_ == NodeState::kDown; }

  /// The job holding the primary slot, or kInvalidJob.
  JobId primary_job() const { return slots_.empty() ? kInvalidJob : slots_[0]; }

  /// Jobs in secondary slots (excludes kInvalidJob entries).
  std::vector<JobId> secondary_jobs() const;

  /// All distinct jobs on the node, primary first.
  std::vector<JobId> jobs() const;

  /// Raw slot contents (slot 0 = primary, kInvalidJob = free slot).
  /// Allocation-free alternative to jobs() for hot scheduler scans.
  const std::vector<JobId>& slot_jobs() const { return slots_; }

  /// Number of jobs currently on the node.
  int job_count() const;

  /// True if the primary slot is free (node idle and up).
  bool primary_free() const;

  /// True if a secondary slot is free AND a primary job is present.
  /// (Secondary slots are only usable under an existing primary: sharing
  /// means joining a running job, not claiming an idle node's SMT threads.)
  bool secondary_free() const;

  /// Claims the primary slot. Requires primary_free().
  void assign_primary(JobId job);

  /// Claims one secondary slot. Requires secondary_free().
  void assign_secondary(JobId job);

  /// Removes a job from whichever slot it holds. If the primary leaves
  /// while secondaries remain, the first secondary is promoted to primary
  /// (the surviving job now owns the core's first threads).
  void remove(JobId job);

  /// Failure injection: marks the node down. Requires the node be empty.
  void set_down(bool down);

 private:
  NodeId id_;
  NodeConfig config_;
  NodeState state_ = NodeState::kIdle;
  /// slots_[0] = primary; slots_[1..smt-1] = secondaries. kInvalidJob = free.
  std::vector<JobId> slots_;

  void refresh_state();
};

}  // namespace cosched::cluster
