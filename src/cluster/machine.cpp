#include "cluster/machine.hpp"

#include <algorithm>

namespace cosched::cluster {

Machine::Machine(int node_count, const NodeConfig& config,
                 TopologyParams topology, PlacementPolicy placement)
    : config_(config),
      topology_(topology, node_count),
      placement_(placement) {
  COSCHED_CHECK(node_count > 0);
  nodes_.reserve(static_cast<std::size_t>(node_count));
  free_primary_.reset(node_count);
  free_secondary_.reset(node_count);
  for (int i = 0; i < node_count; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), config);
    free_primary_.insert(static_cast<NodeId>(i));
  }
}

const Node& Machine::node(NodeId id) const {
  COSCHED_CHECK(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Machine::node_mutable(NodeId id) {
  COSCHED_CHECK(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

int Machine::busy_node_count() const {
  int n = 0;
  for (const auto& node : nodes_) n += (node.job_count() > 0) ? 1 : 0;
  return n;
}

int Machine::up_node_count() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.is_down() ? 0 : 1;
  return n;
}

std::optional<std::vector<NodeId>> Machine::find_free_nodes(int count) const {
  COSCHED_CHECK(count > 0);
  if (count > free_node_count()) return std::nullopt;
  if (placement_ == PlacementPolicy::kCompact && !topology_.flat()) {
    return find_free_nodes_compact(count);
  }
  // Lowest-id placement: the index is already in id order, take its head.
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (NodeId id : free_primary_) {
    out.push_back(id);
    if (static_cast<int>(out.size()) == count) break;
  }
  return out;
}

std::optional<std::vector<NodeId>> Machine::find_free_nodes_compact(
    int count) const {
  // Free nodes grouped by leaf switch (walks the index, not all nodes).
  std::vector<std::vector<NodeId>> per_switch(
      static_cast<std::size_t>(topology_.switch_count()));
  for (NodeId id : free_primary_) {
    per_switch[static_cast<std::size_t>(topology_.switch_of(id))]
        .push_back(id);
  }
  // Best fit when one switch suffices: the switch with the smallest free
  // count that still fits (preserve big holes for big jobs).
  int best_single = -1;
  for (std::size_t s = 0; s < per_switch.size(); ++s) {
    const int free = static_cast<int>(per_switch[s].size());
    if (free >= count &&
        (best_single < 0 ||
         free < static_cast<int>(
                    per_switch[static_cast<std::size_t>(best_single)]
                        .size()))) {
      best_single = static_cast<int>(s);
    }
  }
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  if (best_single >= 0) {
    const auto& pool = per_switch[static_cast<std::size_t>(best_single)];
    out.assign(pool.begin(), pool.begin() + count);
    return out;
  }
  // Greedy fewest switches: take from the fullest switches first (ties by
  // switch id for determinism).
  std::vector<std::size_t> order(per_switch.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (per_switch[a].size() != per_switch[b].size()) {
      return per_switch[a].size() > per_switch[b].size();
    }
    return a < b;
  });
  for (std::size_t s : order) {
    for (NodeId n : per_switch[s]) {
      out.push_back(n);
      if (static_cast<int>(out.size()) == count) return out;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> Machine::find_shareable_nodes(
    int count, const std::function<bool(JobId)>& primary_ok) const {
  COSCHED_CHECK(count > 0);
  if (count > static_cast<int>(free_secondary_.size())) return std::nullopt;
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (NodeId id : free_secondary_) {
    if (primary_ok && !primary_ok(node(id).primary_job())) continue;
    out.push_back(id);
    if (static_cast<int>(out.size()) == count) return out;
  }
  return std::nullopt;
}

std::vector<JobId> Machine::primaries_with_free_secondary() const {
  std::vector<JobId> out;
  for (NodeId id : free_secondary_) {
    const JobId p = node(id).primary_job();
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

void Machine::allocate_primary(JobId job, const std::vector<NodeId>& nodes) {
  COSCHED_CHECK_MSG(!allocations_.count(job),
                    "job " << job << " is already allocated");
  COSCHED_CHECK(!nodes.empty());
  for (NodeId id : nodes) {
    node_mutable(id).assign_primary(job);
    resync_node(id);
  }
  allocations_[job] = Allocation{job, AllocationKind::kPrimary, nodes};
  if (tracer_ != nullptr) tracer_->machine_alloc("alloc_primary", job, nodes);
}

void Machine::allocate_secondary(JobId job, const std::vector<NodeId>& nodes) {
  COSCHED_CHECK_MSG(!allocations_.count(job),
                    "job " << job << " is already allocated");
  COSCHED_CHECK(!nodes.empty());
  for (NodeId id : nodes) {
    node_mutable(id).assign_secondary(job);
    resync_node(id);
  }
  allocations_[job] = Allocation{job, AllocationKind::kSecondary, nodes};
  if (tracer_ != nullptr) {
    tracer_->machine_alloc("alloc_secondary", job, nodes);
  }
}

Allocation Machine::release(JobId job) {
  auto it = allocations_.find(job);
  COSCHED_CHECK_MSG(it != allocations_.end(),
                    "release of unallocated job " << job);
  Allocation alloc = std::move(it->second);
  allocations_.erase(it);
  for (NodeId id : alloc.nodes) {
    // A departing primary may promote a secondary (the surviving job now
    // owns the core's first threads); Allocation.kind describes how a job
    // *started*, so the promoted job's record is untouched. resync derives
    // the node's free-capacity membership from the post-remove slot state
    // either way.
    node_mutable(id).remove(job);
    resync_node(id);
  }
  if (tracer_ != nullptr) tracer_->machine_alloc("release", job, alloc.nodes);
  return alloc;
}

const Allocation* Machine::allocation(JobId job) const {
  auto it = allocations_.find(job);
  return it == allocations_.end() ? nullptr : &it->second;
}

std::vector<JobId> Machine::co_residents(JobId job) const {
  const Allocation* alloc = allocation(job);
  std::vector<JobId> out;
  if (!alloc) return out;
  for (NodeId id : alloc->nodes) {
    for (JobId other : node(id).jobs()) {
      if (other == job) continue;
      if (std::find(out.begin(), out.end(), other) == out.end()) {
        out.push_back(other);
      }
    }
  }
  return out;
}

void Machine::set_node_down(NodeId id, bool down) {
  node_mutable(id).set_down(down);
  resync_node(id);
  if (tracer_ != nullptr) tracer_->node_state(id, down);
}

void Machine::resync_node(NodeId id) {
  const Node& n = nodes_[static_cast<std::size_t>(id)];
  if (n.primary_free()) {
    free_primary_.insert(id);
  } else {
    free_primary_.erase(id);
  }
  if (n.secondary_free()) {
    free_secondary_.insert(id);
  } else {
    free_secondary_.erase(id);
  }
}

void Machine::check_invariants() const {
  // Brute-force recomputation of the free-capacity index: the maintained
  // sets must match a full rescan exactly, node for node.
  NodeIdSet expect_primary(node_count());
  NodeIdSet expect_secondary(node_count());
  for (const auto& node : nodes_) {
    if (node.primary_free()) expect_primary.insert(node.id());
    if (node.secondary_free()) expect_secondary.insert(node.id());
    // Secondary occupancy implies a primary.
    if (!node.secondary_jobs().empty()) {
      COSCHED_CHECK_MSG(node.primary_job() != kInvalidJob,
                        "node " << node.id()
                                << " has secondaries without a primary");
    }
  }
  COSCHED_CHECK_MSG(expect_primary == free_primary_,
                    "free-primary index drifted: holds "
                        << free_primary_.size() << " node(s), rescan found "
                        << expect_primary.size());
  COSCHED_CHECK_MSG(expect_secondary == free_secondary_,
                    "free-secondary index drifted: holds "
                        << free_secondary_.size() << " node(s), rescan found "
                        << expect_secondary.size());
  for (const auto& [job, alloc] : allocations_) {
    COSCHED_CHECK(job == alloc.job);
    for (NodeId id : alloc.nodes) {
      const auto jobs = node(id).jobs();
      COSCHED_CHECK_MSG(
          std::find(jobs.begin(), jobs.end(), job) != jobs.end(),
          "allocation for job " << job << " references node " << id
                                << " which does not host it");
    }
  }
}

}  // namespace cosched::cluster
