#include "cluster/machine.hpp"

#include <algorithm>
#include <atomic>

namespace cosched::cluster {

namespace {
/// Machine instance ids; atomic because the ParallelRunner constructs
/// machines from worker threads. See Machine::instance_id().
std::atomic<std::uint64_t> next_machine_id{1};
}  // namespace

Machine::Machine(int node_count, const NodeConfig& config,
                 TopologyParams topology, PlacementPolicy placement)
    : config_(config),
      topology_(topology, node_count),
      placement_(placement) {
  COSCHED_CHECK(node_count > 0);
  instance_id_ = next_machine_id.fetch_add(1, std::memory_order_relaxed);
  nodes_.reserve(static_cast<std::size_t>(node_count));
  free_primary_.reset(node_count);
  free_secondary_.reset(node_count);
  free_end_.assign(static_cast<std::size_t>(node_count), 0);
  node_busy_.assign(static_cast<std::size_t>(node_count), 0);
  primary_job_.assign(static_cast<std::size_t>(node_count), kInvalidJob);
  node_gens_.assign(static_cast<std::size_t>(node_count), 0);
  node_dirty_flag_.assign(static_cast<std::size_t>(node_count), 0);
  // Capacity hint: every node can be busy at once (the flat reference
  // implementation preallocates; the bucketed one sizes on demand).
  busy_ends_.reserve(node_count);
  for (int i = 0; i < node_count; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), config);
    free_primary_.insert(static_cast<NodeId>(i));
  }
}

void Machine::clear_dirty_nodes() {
  for (NodeId id : dirty_nodes_) {
    node_dirty_flag_[static_cast<std::size_t>(id)] = 0;
  }
  dirty_nodes_.clear();
}

const Node& Machine::node(NodeId id) const {
  COSCHED_CHECK(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Machine::node_mutable(NodeId id) {
  COSCHED_CHECK(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

int Machine::busy_node_count() const {
  int n = 0;
  for (const auto& node : nodes_) n += (node.job_count() > 0) ? 1 : 0;
  return n;
}

int Machine::up_node_count() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.is_down() ? 0 : 1;
  return n;
}

std::optional<std::vector<NodeId>> Machine::find_free_nodes(int count) const {
  COSCHED_CHECK(count > 0);
  if (count > free_node_count()) return std::nullopt;
  if (placement_ == PlacementPolicy::kCompact && !topology_.flat()) {
    return find_free_nodes_compact(count);
  }
  // Lowest-id placement: the index is already in id order, take its head.
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (NodeId id : free_primary_) {
    out.push_back(id);
    if (static_cast<int>(out.size()) == count) break;
  }
  return out;
}

std::optional<std::vector<NodeId>> Machine::find_free_nodes_compact(
    int count) const {
  // Free nodes grouped by leaf switch (walks the index, not all nodes).
  std::vector<std::vector<NodeId>> per_switch(
      static_cast<std::size_t>(topology_.switch_count()));
  for (NodeId id : free_primary_) {
    per_switch[static_cast<std::size_t>(topology_.switch_of(id))]
        .push_back(id);
  }
  // Best fit when one switch suffices: the switch with the smallest free
  // count that still fits (preserve big holes for big jobs).
  int best_single = -1;
  for (std::size_t s = 0; s < per_switch.size(); ++s) {
    const int free = static_cast<int>(per_switch[s].size());
    if (free >= count &&
        (best_single < 0 ||
         free < static_cast<int>(
                    per_switch[static_cast<std::size_t>(best_single)]
                        .size()))) {
      best_single = static_cast<int>(s);
    }
  }
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  if (best_single >= 0) {
    const auto& pool = per_switch[static_cast<std::size_t>(best_single)];
    out.assign(pool.begin(), pool.begin() + count);
    return out;
  }
  // Greedy fewest switches: take from the fullest switches first (ties by
  // switch id for determinism).
  std::vector<std::size_t> order(per_switch.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (per_switch[a].size() != per_switch[b].size()) {
      return per_switch[a].size() > per_switch[b].size();
    }
    return a < b;
  });
  for (std::size_t s : order) {
    for (NodeId n : per_switch[s]) {
      out.push_back(n);
      if (static_cast<int>(out.size()) == count) return out;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> Machine::find_shareable_nodes(
    int count, util::FunctionRef<bool(JobId)> primary_ok) const {
  COSCHED_CHECK(count > 0);
  if (count > static_cast<int>(free_secondary_.size())) return std::nullopt;
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (NodeId id : free_secondary_) {
    if (primary_ok && !primary_ok(primary_job_of(id))) continue;
    out.push_back(id);
    if (static_cast<int>(out.size()) == count) return out;
  }
  return std::nullopt;
}

std::vector<JobId> Machine::primaries_with_free_secondary() const {
  std::vector<JobId> out;
  for (NodeId id : free_secondary_) {
    const JobId p = primary_job_of(id);
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

void Machine::allocate_primary(JobId job, const std::vector<NodeId>& nodes,
                               SimTime walltime_end) {
  COSCHED_CHECK_MSG(!allocations_.count(job),
                    "job " << job << " is already allocated");
  COSCHED_CHECK(!nodes.empty());
  // The allocation record goes in first: resync_node reads residents'
  // walltime ends out of allocations_.
  allocations_[job] = Allocation{job, AllocationKind::kPrimary, nodes,
                                 walltime_end};
  for (NodeId id : nodes) {
    node_mutable(id).assign_primary(job);
    resync_node(id);
  }
  if (tracer_ != nullptr) tracer_->machine_alloc("alloc_primary", job, nodes);
}

void Machine::allocate_secondary(JobId job, const std::vector<NodeId>& nodes,
                                 SimTime walltime_end) {
  COSCHED_CHECK_MSG(!allocations_.count(job),
                    "job " << job << " is already allocated");
  COSCHED_CHECK(!nodes.empty());
  allocations_[job] = Allocation{job, AllocationKind::kSecondary, nodes,
                                 walltime_end};
  for (NodeId id : nodes) {
    node_mutable(id).assign_secondary(job);
    resync_node(id);
  }
  if (tracer_ != nullptr) {
    tracer_->machine_alloc("alloc_secondary", job, nodes);
  }
}

void Machine::set_walltime_end(JobId job, SimTime walltime_end) {
  const auto it = allocations_.find(job);
  COSCHED_CHECK_MSG(it != allocations_.end(),
                    "walltime change for unallocated job " << job);
  if (it->second.walltime_end == walltime_end) return;
  it->second.walltime_end = walltime_end;
  for (NodeId id : it->second.nodes) resync_node(id);
}

Allocation Machine::release(JobId job) {
  auto it = allocations_.find(job);
  COSCHED_CHECK_MSG(it != allocations_.end(),
                    "release of unallocated job " << job);
  Allocation alloc = std::move(it->second);
  allocations_.erase(it);
  for (NodeId id : alloc.nodes) {
    // A departing primary may promote a secondary (the surviving job now
    // owns the core's first threads); Allocation.kind describes how a job
    // *started*, so the promoted job's record is untouched. resync derives
    // the node's free-capacity membership from the post-remove slot state
    // either way.
    node_mutable(id).remove(job);
    resync_node(id);
  }
  if (tracer_ != nullptr) tracer_->machine_alloc("release", job, alloc.nodes);
  return alloc;
}

const Allocation* Machine::allocation(JobId job) const {
  auto it = allocations_.find(job);
  return it == allocations_.end() ? nullptr : &it->second;
}

std::vector<JobId> Machine::co_residents(JobId job) const {
  const Allocation* alloc = allocation(job);
  std::vector<JobId> out;
  if (!alloc) return out;
  for (NodeId id : alloc->nodes) {
    for (JobId other : node(id).jobs()) {
      if (other == job) continue;
      if (std::find(out.begin(), out.end(), other) == out.end()) {
        out.push_back(other);
      }
    }
  }
  return out;
}

void Machine::set_node_down(NodeId id, bool down) {
  node_mutable(id).set_down(down);
  resync_node(id);
  if (tracer_ != nullptr) tracer_->node_state(id, down);
}

void Machine::resync_node(NodeId id) {
  const Node& n = nodes_[static_cast<std::size_t>(id)];
  if (n.primary_free()) {
    free_primary_.insert(id);
  } else {
    free_primary_.erase(id);
  }
  if (n.secondary_free()) {
    free_secondary_.insert(id);
  } else {
    free_secondary_.erase(id);
  }
  // Stamp the node with the post-increment *global* generation rather than
  // an independent per-node counter. Consumers key memo entries on
  // max(node_generation over an allocation); with independent counters a
  // bump on a low-counter node could be masked by a sibling's higher value.
  // Globally-unique monotone stamps make that max move on every change.
  node_gens_[static_cast<std::size_t>(id)] = ++generation_;
  // Accumulate for the incremental rate refresh (see dirty_nodes()).
  if (node_dirty_flag_[static_cast<std::size_t>(id)] == 0) {
    node_dirty_flag_[static_cast<std::size_t>(id)] = 1;
    dirty_nodes_.push_back(id);
  }
  // Residency mirror for the contiguous candidate scans.
  primary_job_[static_cast<std::size_t>(id)] = n.primary_job();
  // Free-time cache: a node is tracked in busy_ends_ iff it is up and holds
  // at least one job (slot 0 occupied — secondaries imply a primary). Its
  // cached end is the latest resident walltime end, unclamped; queries
  // clamp with max(now, end).
  const bool was_busy = node_busy_[static_cast<std::size_t>(id)] != 0;
  const SimTime old_end = free_end_[static_cast<std::size_t>(id)];
  const bool busy = !n.is_down() && !n.primary_free();
  SimTime end = 0;
  if (busy) {
    for (JobId resident : n.slot_jobs()) {
      if (resident == kInvalidJob) continue;
      const auto it = allocations_.find(resident);
      COSCHED_CHECK_MSG(it != allocations_.end(),
                        "resident job " << resident
                                        << " has no allocation record");
      end = std::max(end, it->second.walltime_end);
    }
  }
  if (busy == was_busy && (!busy || end == old_end)) return;
  if (was_busy) busy_ends_.erase(old_end);
  if (busy) busy_ends_.insert(end);
  node_busy_[static_cast<std::size_t>(id)] = busy ? 1 : 0;
  free_end_[static_cast<std::size_t>(id)] = end;
}

SimTime Machine::node_free_time(NodeId id, SimTime now) const {
  const Node& n = node(id);
  if (n.is_down()) return kTimeInfinity;
  if (node_busy_[static_cast<std::size_t>(id)] == 0) return now;
  return std::max(now, free_end_[static_cast<std::size_t>(id)]);
}

SimTime Machine::kth_free_time(int k, SimTime now) const {
  COSCHED_CHECK(k >= 0);
  const int free = free_node_count();
  if (k < free) return now;
  k -= free;
  if (k < busy_ends_.size()) return std::max(now, busy_ends_.kth(k));
  return kTimeInfinity;  // only down nodes remain
}

int Machine::free_count_at(SimTime t, SimTime now) const {
  if (t < now) return 0;
  // Clamped end max(now, e) <= t iff e <= t, given t >= now.
  return free_node_count() + busy_ends_.count_leq(t);
}

void Machine::check_invariants() const {
  // Brute-force recomputation of the free-capacity index: the maintained
  // sets must match a full rescan exactly, node for node.
  NodeIdSet expect_primary(node_count());
  NodeIdSet expect_secondary(node_count());
  for (const auto& node : nodes_) {
    if (node.primary_free()) expect_primary.insert(node.id());
    if (node.secondary_free()) expect_secondary.insert(node.id());
    // Secondary occupancy implies a primary.
    if (!node.secondary_jobs().empty()) {
      COSCHED_CHECK_MSG(node.primary_job() != kInvalidJob,
                        "node " << node.id()
                                << " has secondaries without a primary");
    }
  }
  COSCHED_CHECK_MSG(expect_primary == free_primary_,
                    "free-primary index drifted: holds "
                        << free_primary_.size() << " node(s), rescan found "
                        << expect_primary.size());
  COSCHED_CHECK_MSG(expect_secondary == free_secondary_,
                    "free-secondary index drifted: holds "
                        << free_secondary_.size() << " node(s), rescan found "
                        << expect_secondary.size());
  // Check order over the allocation table is hash-order, but every check
  // must pass and the stream sink only fires on the abort path, so no
  // ordering reaches replayed output.
  for (const auto& [job, alloc] : allocations_) {  // cosched-lint: allow(unordered-iteration-escape)
    COSCHED_CHECK(job == alloc.job);
    for (NodeId id : alloc.nodes) {
      const auto jobs = node(id).jobs();
      COSCHED_CHECK_MSG(
          std::find(jobs.begin(), jobs.end(), job) != jobs.end(),
          "allocation for job " << job << " references node " << id
                                << " which does not host it");
    }
  }
  // Free-time index and residency mirror: recompute every node's cached
  // state and the busy-ends multiset from scratch; all must match the
  // maintained structure-of-arrays state.
  std::vector<SimTime> expect_ends;
  for (const auto& node : nodes_) {
    const auto idx = static_cast<std::size_t>(node.id());
    COSCHED_CHECK_MSG(primary_job_[idx] == node.primary_job(),
                      "primary-job mirror drifted on node "
                          << node.id() << ": cached " << primary_job_[idx]
                          << " vs slot " << node.primary_job());
    const bool cached_busy = node_busy_[idx] != 0;
    const bool busy = !node.is_down() && !node.primary_free();
    COSCHED_CHECK_MSG(cached_busy == busy,
                      "free-time cache drifted on node "
                          << node.id() << ": busy flag " << cached_busy
                          << " vs rescan " << busy);
    if (!busy) continue;
    SimTime end = 0;
    for (JobId resident : node.slot_jobs()) {
      if (resident == kInvalidJob) continue;
      end = std::max(end, allocations_.at(resident).walltime_end);
    }
    COSCHED_CHECK_MSG(free_end_[idx] == end,
                      "free-time cache drifted on node "
                          << node.id() << ": cached end " << free_end_[idx]
                          << " vs rescan " << end);
    expect_ends.push_back(end);
  }
  std::sort(expect_ends.begin(), expect_ends.end());
  COSCHED_CHECK_MSG(expect_ends == busy_ends_.to_sorted_vector(),
                    "busy-ends multiset drifted: holds "
                        << busy_ends_.size() << " entries, rescan found "
                        << expect_ends.size());
  // The two-level free-capacity index: summary bitmaps and per-block
  // popcounts must agree with the word arrays.
  free_primary_.check_summary();
  free_secondary_.check_summary();
}

}  // namespace cosched::cluster
