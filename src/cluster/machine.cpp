#include "cluster/machine.hpp"

#include <algorithm>

namespace cosched::cluster {

Machine::Machine(int node_count, const NodeConfig& config,
                 TopologyParams topology, PlacementPolicy placement)
    : config_(config),
      topology_(topology, node_count),
      placement_(placement) {
  COSCHED_CHECK(node_count > 0);
  nodes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), config);
  }
  free_primary_count_ = node_count;
}

const Node& Machine::node(NodeId id) const {
  COSCHED_CHECK(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Machine::node_mutable(NodeId id) {
  COSCHED_CHECK(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

int Machine::busy_node_count() const {
  int n = 0;
  for (const auto& node : nodes_) n += (node.job_count() > 0) ? 1 : 0;
  return n;
}

int Machine::up_node_count() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.is_down() ? 0 : 1;
  return n;
}

std::optional<std::vector<NodeId>> Machine::find_free_nodes(int count) const {
  COSCHED_CHECK(count > 0);
  if (count > free_primary_count_) return std::nullopt;
  if (placement_ == PlacementPolicy::kCompact && !topology_.flat()) {
    return find_free_nodes_compact(count);
  }
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (const auto& node : nodes_) {
    if (node.primary_free()) {
      out.push_back(node.id());
      if (static_cast<int>(out.size()) == count) return out;
    }
  }
  return std::nullopt;  // free count was stale — recount guards this
}

std::optional<std::vector<NodeId>> Machine::find_free_nodes_compact(
    int count) const {
  // Free nodes grouped by leaf switch.
  std::vector<std::vector<NodeId>> per_switch(
      static_cast<std::size_t>(topology_.switch_count()));
  for (const auto& node : nodes_) {
    if (node.primary_free()) {
      per_switch[static_cast<std::size_t>(topology_.switch_of(node.id()))]
          .push_back(node.id());
    }
  }
  // Best fit when one switch suffices: the switch with the smallest free
  // count that still fits (preserve big holes for big jobs).
  int best_single = -1;
  for (std::size_t s = 0; s < per_switch.size(); ++s) {
    const int free = static_cast<int>(per_switch[s].size());
    if (free >= count &&
        (best_single < 0 ||
         free < static_cast<int>(
                    per_switch[static_cast<std::size_t>(best_single)]
                        .size()))) {
      best_single = static_cast<int>(s);
    }
  }
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  if (best_single >= 0) {
    const auto& pool = per_switch[static_cast<std::size_t>(best_single)];
    out.assign(pool.begin(), pool.begin() + count);
    return out;
  }
  // Greedy fewest switches: take from the fullest switches first (ties by
  // switch id for determinism).
  std::vector<std::size_t> order(per_switch.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (per_switch[a].size() != per_switch[b].size()) {
      return per_switch[a].size() > per_switch[b].size();
    }
    return a < b;
  });
  for (std::size_t s : order) {
    for (NodeId n : per_switch[s]) {
      out.push_back(n);
      if (static_cast<int>(out.size()) == count) return out;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> Machine::find_shareable_nodes(
    int count, const std::function<bool(JobId)>& primary_ok) const {
  COSCHED_CHECK(count > 0);
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (const auto& node : nodes_) {
    if (!node.secondary_free()) continue;
    if (primary_ok && !primary_ok(node.primary_job())) continue;
    out.push_back(node.id());
    if (static_cast<int>(out.size()) == count) return out;
  }
  return std::nullopt;
}

std::vector<JobId> Machine::primaries_with_free_secondary() const {
  std::vector<JobId> out;
  for (const auto& node : nodes_) {
    if (!node.secondary_free()) continue;
    const JobId p = node.primary_job();
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

void Machine::allocate_primary(JobId job, const std::vector<NodeId>& nodes) {
  COSCHED_CHECK_MSG(!allocations_.count(job),
                    "job " << job << " is already allocated");
  COSCHED_CHECK(!nodes.empty());
  for (NodeId id : nodes) node_mutable(id).assign_primary(job);
  allocations_[job] = Allocation{job, AllocationKind::kPrimary, nodes};
  free_primary_count_ -= static_cast<int>(nodes.size());
}

void Machine::allocate_secondary(JobId job, const std::vector<NodeId>& nodes) {
  COSCHED_CHECK_MSG(!allocations_.count(job),
                    "job " << job << " is already allocated");
  COSCHED_CHECK(!nodes.empty());
  for (NodeId id : nodes) node_mutable(id).assign_secondary(job);
  allocations_[job] = Allocation{job, AllocationKind::kSecondary, nodes};
}

Allocation Machine::release(JobId job) {
  auto it = allocations_.find(job);
  COSCHED_CHECK_MSG(it != allocations_.end(),
                    "release of unallocated job " << job);
  Allocation alloc = std::move(it->second);
  allocations_.erase(it);
  for (NodeId id : alloc.nodes) {
    Node& n = node_mutable(id);
    const bool was_primary_here = (n.primary_job() == job);
    n.remove(job);
    if (was_primary_here) {
      // If a secondary was promoted to primary, reflect the promotion in
      // that job's allocation record: the node is now a primary-kind hold
      // for it. Allocation.kind describes how the job *started*, so we keep
      // the record's kind but nothing else changes; free accounting is
      // recomputed below.
      (void)was_primary_here;
    }
  }
  recount_free();
  return alloc;
}

const Allocation* Machine::allocation(JobId job) const {
  auto it = allocations_.find(job);
  return it == allocations_.end() ? nullptr : &it->second;
}

std::vector<JobId> Machine::co_residents(JobId job) const {
  const Allocation* alloc = allocation(job);
  std::vector<JobId> out;
  if (!alloc) return out;
  for (NodeId id : alloc->nodes) {
    for (JobId other : node(id).jobs()) {
      if (other == job) continue;
      if (std::find(out.begin(), out.end(), other) == out.end()) {
        out.push_back(other);
      }
    }
  }
  return out;
}

void Machine::set_node_down(NodeId id, bool down) {
  node_mutable(id).set_down(down);
  recount_free();
}

void Machine::recount_free() {
  free_primary_count_ = 0;
  for (const auto& node : nodes_) {
    free_primary_count_ += node.primary_free() ? 1 : 0;
  }
}

void Machine::check_invariants() const {
  int free_count = 0;
  for (const auto& node : nodes_) {
    free_count += node.primary_free() ? 1 : 0;
    // Secondary occupancy implies a primary.
    if (!node.secondary_jobs().empty()) {
      COSCHED_CHECK_MSG(node.primary_job() != kInvalidJob,
                        "node " << node.id()
                                << " has secondaries without a primary");
    }
  }
  COSCHED_CHECK_MSG(free_count == free_primary_count_,
                    "free primary count drifted: cached "
                        << free_primary_count_ << " actual " << free_count);
  for (const auto& [job, alloc] : allocations_) {
    COSCHED_CHECK(job == alloc.job);
    for (NodeId id : alloc.nodes) {
      const auto jobs = node(id).jobs();
      COSCHED_CHECK_MSG(
          std::find(jobs.begin(), jobs.end(), job) != jobs.end(),
          "allocation for job " << job << " references node " << id
                                << " which does not host it");
    }
  }
}

}  // namespace cosched::cluster
