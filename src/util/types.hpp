// Fundamental scalar types shared by every CoSched subsystem.
//
// Simulation time is kept in integer microseconds so that event ordering is
// exact and runs are bit-reproducible across platforms; helpers convert to
// and from floating-point seconds at the API boundary only.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace cosched {

/// Simulation time in integer microseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in integer microseconds.
using SimDuration = std::int64_t;

/// Identifier types. Separate aliases keep signatures self-describing.
using JobId = std::int64_t;
using NodeId = std::int32_t;
using AppId = std::int32_t;

inline constexpr JobId kInvalidJob = -1;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1'000;
inline constexpr SimDuration kSecond = 1'000'000;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

/// Converts floating-point seconds to integer simulation time (rounds to
/// nearest microsecond; negative inputs round symmetrically).
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) +
                              (s >= 0 ? 0.5 : -0.5));
}

/// Converts simulation time to floating-point seconds.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Formats a duration as "[D-]HH:MM:SS" (SLURM timelimit style).
std::string format_duration(SimDuration d);

/// Parses "SS", "MM:SS", "HH:MM:SS" or "D-HH:MM:SS" into a duration.
/// Returns -1 on malformed input.
SimDuration parse_duration(const std::string& text);

}  // namespace cosched
