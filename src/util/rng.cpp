#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace cosched {

std::uint64_t splitmix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t cell) {
  // The golden-ratio increment is SplitMix64's stream step; offsetting by
  // (cell + 1) keeps cell 0 distinct from the bare base seed.
  return splitmix64(base + (cell + 1) * 0x9e3779b97f4a7c15ULL);
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  COSCHED_CHECK(bound > 0);
  // Debiased modulo (Lemire-style rejection on the low range).
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::next_double() {
  // 32 bits of entropy is enough resolution for simulation draws and keeps
  // one state advance per double, which makes stream accounting simple.
  return static_cast<double>(next_u32()) * 0x1.0p-32;
}

Pcg32 Pcg32::fork() {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  const std::uint64_t stream =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Pcg32(seed, stream);
}

double Pcg32::uniform(double lo, double hi) {
  COSCHED_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) {
  COSCHED_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32());
  }
  if (span <= 0xffffffffULL) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint32_t>(span)));
  }
  // Rare wide-range case: rejection sample over 64 bits.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  for (;;) {
    const std::uint64_t r =
        (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
    if (r < limit) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Pcg32::exponential(double rate) {
  COSCHED_CHECK(rate > 0);
  // 1 - U in (0, 1] avoids log(0).
  return -std::log(1.0 - next_double()) / rate;
}

double Pcg32::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Pcg32::normal(double mean, double stddev) {
  const double u1 = 1.0 - next_double();  // (0, 1]
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * std::numbers::pi * u2);
}

double Pcg32::weibull(double shape, double scale) {
  COSCHED_CHECK(shape > 0 && scale > 0);
  return scale * std::pow(-std::log(1.0 - next_double()), 1.0 / shape);
}

double Pcg32::bounded_pareto(double alpha, double lo, double hi) {
  COSCHED_CHECK(alpha > 0 && lo > 0 && lo < hi);
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Pcg32::bernoulli(double p) { return next_double() < p; }

std::size_t Pcg32::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    COSCHED_CHECK(w >= 0);
    total += w;
  }
  COSCHED_CHECK(total > 0);
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge: last positive weight
}

}  // namespace cosched
