// A non-owning, trivially-copyable reference to a callable: two words (a
// context pointer and a thunk), no heap, no virtual dispatch. The callable
// must outlive the FunctionRef — it is built for "pass a predicate down
// one call" seams on decision paths, where constructing a std::function
// would heap-allocate per call (banned there by cosched_lint's
// no-std-function rule).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace cosched::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): by design
      : ctx_(const_cast<void*>(static_cast<const void*>(&f))),
        thunk_([](void* ctx, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(ctx))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return thunk_(ctx_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return thunk_ != nullptr; }

 private:
  void* ctx_ = nullptr;
  R (*thunk_)(void*, Args...) = nullptr;
};

}  // namespace cosched::util
