#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace cosched {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  COSCHED_CHECK(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  COSCHED_CHECK_MSG(!rows_.empty(), "call row() before add()");
  COSCHED_CHECK_MSG(rows_.back().size() < header_.size(),
                    "row has more cells than header columns");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add(std::int64_t value) {
  return add(std::to_string(value));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const auto pad = widths[c] - cell.size();
      if (looks_numeric(cell)) {
        oss << std::string(pad, ' ') << cell;
      } else {
        oss << cell << std::string(pad, ' ');
      }
      oss << (c + 1 < header_.size() ? "  " : "");
    }
    oss << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  oss << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << (c ? "," : "") << csv_escape(cells[c]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void Table::print(std::ostream& os, bool csv) const {
  os << (csv ? to_csv() : to_text());
}

}  // namespace cosched
