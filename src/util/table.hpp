// ASCII table and CSV emission for benchmark harnesses and examples.
// Every table/figure binary prints through this so output is uniform and
// machine-parsable (--csv flips the format).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cosched {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision. Right-aligns cells that parse as numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent `add` calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 3);
  Table& add(std::int64_t value);
  Table& add(int value) { return add(static_cast<std::int64_t>(value)); }
  Table& add(std::size_t value) {
    return add(static_cast<std::int64_t>(value));
  }

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns and a header rule.
  std::string to_text() const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Convenience: prints to the stream in the chosen format.
  void print(std::ostream& os, bool csv = false) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cosched
