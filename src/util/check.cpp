#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace cosched::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  // The process is about to abort; the logger itself may be the thing
  // that failed, so write the last words straight to stderr.
  std::fprintf(stderr, "COSCHED_CHECK failed: %s at %s:%d%s%s\n",  // cosched-lint: allow(no-raw-stdio)
               expr, file, line, message.empty() ? "" : " — ",
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace cosched::detail
