#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace cosched::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::fprintf(stderr, "COSCHED_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace cosched::detail
