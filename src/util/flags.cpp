#include "util/flags.hpp"

#include <charconv>

#include "util/check.hpp"

namespace cosched {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    COSCHED_REQUIRE(!body.empty(), "bare '--' is not a valid flag");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // valueless flag: boolean "true"
    }
  }
}

const std::string* Flags::find(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return nullptr;
  used_[name] = true;
  return &it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  const std::string* v = find(name);
  return v ? *v : def;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const std::string* v = find(name);
  if (!v) return def;
  std::int64_t out = 0;
  auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  COSCHED_REQUIRE(ec == std::errc{} && p == v->data() + v->size(),
                  "flag --" << name << " expects an integer, got '" << *v
                            << "'");
  return out;
}

double Flags::get_double(const std::string& name, double def) const {
  const std::string* v = find(name);
  if (!v) return def;
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  COSCHED_REQUIRE(end == v->c_str() + v->size() && !v->empty(),
                  "flag --" << name << " expects a number, got '" << *v
                            << "'");
  return out;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const std::string* v = find(name);
  if (!v) return def;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw Error("flag --" + name + " expects a boolean, got '" + *v + "'");
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!used_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace cosched
