// Minimal streaming JSON writer (no DOM): correct escaping, automatic
// comma placement, scope balancing checked at destruction. Used by the
// report module to export simulation results for downstream analysis.
// Plus a small recursive-descent parser (JsonValue / parse_json) for
// reading the writer's output back — the golden-metrics regression suite
// round-trips its pinned baselines through it.
#pragma once

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace cosched {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Scopes. Keys apply when inside an object.
  JsonWriter& begin_object();
  JsonWriter& begin_object(const std::string& key);
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key);
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Values (keyed forms for objects, bare forms for arrays).
  JsonWriter& value(const std::string& key, const std::string& v);
  JsonWriter& value(const std::string& key, const char* v);
  JsonWriter& value(const std::string& key, double v);
  JsonWriter& value(const std::string& key, std::int64_t v);
  JsonWriter& value(const std::string& key, int v);
  JsonWriter& value(const std::string& key, bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(double v);

  /// The document; all scopes must be closed.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  void comma();
  void key_prefix(const std::string& key);
  void number(double v);

  std::ostringstream out_;
  /// One entry per open scope; true = next element is the scope's first
  /// (no comma needed). Empty at the root.
  std::vector<bool> first_;
};

/// A parsed JSON document node. Numbers are stored as double (sufficient
/// for the metric baselines this parser serves); object keys are ordered
/// so documents re-serialize deterministically.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; abort (COSCHED_CHECK) on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object access. `at` aborts on a missing key; `find` returns nullptr.
  const JsonValue& at(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Object keys in document order.
  std::vector<std::string> keys() const;

  // Construction (used by the parser and by tests).
  static JsonValue null();
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else). Throws cosched::Error with a line/column location on malformed
/// input.
JsonValue parse_json(const std::string& text);

}  // namespace cosched
