// Minimal streaming JSON writer (no DOM): correct escaping, automatic
// comma placement, scope balancing checked at destruction. Used by the
// report module to export simulation results for downstream analysis.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace cosched {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Scopes. Keys apply when inside an object.
  JsonWriter& begin_object();
  JsonWriter& begin_object(const std::string& key);
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key);
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Values (keyed forms for objects, bare forms for arrays).
  JsonWriter& value(const std::string& key, const std::string& v);
  JsonWriter& value(const std::string& key, const char* v);
  JsonWriter& value(const std::string& key, double v);
  JsonWriter& value(const std::string& key, std::int64_t v);
  JsonWriter& value(const std::string& key, int v);
  JsonWriter& value(const std::string& key, bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(double v);

  /// The document; all scopes must be closed.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  void comma();
  void key_prefix(const std::string& key);
  void number(double v);

  std::ostringstream out_;
  /// One entry per open scope; true = next element is the scope's first
  /// (no comma needed). Empty at the root.
  std::vector<bool> first_;
};

}  // namespace cosched
