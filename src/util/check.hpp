// Lightweight invariant checking. COSCHED_CHECK aborts with a message on
// violation in all build types; simulation code uses it to guard internal
// invariants (never user input — user input raises cosched::Error).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cosched {

/// Exception for recoverable errors caused by user input (malformed trace
/// files, inconsistent configuration, impossible job requests).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace cosched

/// Aborts the process with diagnostics when `expr` is false. Used for
/// internal invariants whose violation indicates a bug, not bad input.
#define COSCHED_CHECK(expr)                                           \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::cosched::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
    }                                                                 \
  } while (false)

/// Like COSCHED_CHECK but with a streamed message:
///   COSCHED_CHECK_MSG(x > 0, "x was " << x);
#define COSCHED_CHECK_MSG(expr, stream_expr)                        \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream oss_;                                      \
      oss_ << stream_expr;                                          \
      ::cosched::detail::check_failed(#expr, __FILE__, __LINE__,    \
                                      oss_.str());                  \
    }                                                               \
  } while (false)

/// Throws cosched::Error with a streamed message when `expr` is false.
/// Used to validate external input.
#define COSCHED_REQUIRE(expr, stream_expr)    \
  do {                                        \
    if (!(expr)) {                            \
      std::ostringstream oss_;                \
      oss_ << stream_expr;                    \
      throw ::cosched::Error(oss_.str());     \
    }                                         \
  } while (false)
