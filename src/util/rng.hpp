// Deterministic random number generation for the simulator.
//
// We carry our own PCG32 implementation instead of <random> engines because
// (a) its output is specified, so simulation results are reproducible across
// standard-library implementations, and (b) each subsystem can cheaply fork
// an independent stream from a (seed, stream) pair, keeping experiments with
// shared seeds comparable even when one subsystem draws more numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace cosched {

/// SplitMix64 finalizer: a bijective avalanche mix of `x` (Steele et al.,
/// "Fast splittable pseudorandom number generators"). Every output bit
/// depends on every input bit, so consecutive inputs give statistically
/// independent outputs.
std::uint64_t splitmix64(std::uint64_t x);

/// Derives the seed for experiment cell `cell` of a sweep rooted at
/// `base`. Raw loop indices (1, 2, 3, ...) are low-entropy seeds; routing
/// (base, cell) through SplitMix64 decorrelates the per-cell RNG streams
/// while keeping the derivation pure, so sweeps stay reproducible and the
/// same cell index yields the same seed across configs (paired-seed
/// comparisons remain valid). The exact values are pinned by a test —
/// changing this function invalidates tests/golden/*.json.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t cell);

/// PCG32 (Melissa O'Neill's pcg32_random_r): 64-bit state, 32-bit output,
/// period 2^64 per stream, 2^63 selectable streams.
class Pcg32 {
 public:
  /// Seeds the generator. Distinct `stream` values give statistically
  /// independent sequences for the same `seed`.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Returns the next raw 32-bit value.
  std::uint32_t next_u32();

  /// Returns an unbiased integer in [0, bound). Requires bound > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Returns a double uniformly distributed in [0, 1).
  double next_double();

  /// Forks an independent generator; deterministic given this state.
  Pcg32 fork();

  // --- Distributions -------------------------------------------------------

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller (no cached spare: deterministic draws).
  double normal(double mean, double stddev);

  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Bounded Pareto on [lo, hi] with tail index alpha.
  double bounded_pareto(double alpha, double lo, double hi);

  /// Returns true with probability p.
  bool bernoulli(double p);

  /// Samples an index according to non-negative weights (sum > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace cosched
