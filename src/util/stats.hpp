// Statistics helpers for experiment reporting: streaming moments, order
// statistics, histograms, and bootstrap confidence intervals.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace cosched {

/// Streaming mean/variance via Welford's algorithm; O(1) memory.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) with linear interpolation between
/// order statistics. The input is copied and sorted; empty input yields 0.
double quantile(std::vector<double> values, double q);

/// Arithmetic mean; 0 for empty input.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev_of(const std::vector<double>& values);

/// Result of a bootstrap confidence-interval estimate for the mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap CI for the mean at the given level (e.g. 0.95).
/// Deterministic for a given rng state.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& values,
                                     double level, Pcg32& rng,
                                     int resamples = 1000);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used for slowdown/wait distribution figures.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_[bucket]; }
  std::size_t total() const { return total_; }
  /// Lower edge of a bucket.
  double edge(std::size_t bucket) const;
  /// Empirical CDF value at each bucket's upper edge.
  std::vector<double> cdf() const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cosched
