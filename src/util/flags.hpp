// Minimal command-line flag parsing for examples and bench binaries.
// Supports "--name=value", "--name value", and bare "--name" booleans.
// Unrecognized flags raise cosched::Error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cosched {

class Flags {
 public:
  /// Parses argv. Positional (non --) arguments are collected in order.
  Flags(int argc, const char* const* argv);

  /// Typed getters with defaults. A present-but-valueless flag reads as
  /// "true" for booleans and is an error for other types.
  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  bool has(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  /// Returns flags that were parsed but never read by a getter — callers
  /// print these as "unknown flag" diagnostics after wiring all getters.
  std::vector<std::string> unused() const;

 private:
  const std::string* find(const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace cosched
