#include "util/types.hpp"

#include <charconv>
#include <cstdio>
#include <vector>

namespace cosched {

std::string format_duration(SimDuration d) {
  if (d < 0) return "-" + format_duration(-d);
  const std::int64_t total_seconds = d / kSecond;
  const std::int64_t days = total_seconds / 86400;
  const std::int64_t hours = (total_seconds / 3600) % 24;
  const std::int64_t minutes = (total_seconds / 60) % 60;
  const std::int64_t seconds = total_seconds % 60;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%lld-%02lld:%02lld:%02lld",
                  static_cast<long long>(days), static_cast<long long>(hours),
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds));
  } else {
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds));
  }
  return buf;
}

SimDuration parse_duration(const std::string& text) {
  if (text.empty()) return -1;
  std::int64_t days = 0;
  std::string rest = text;
  if (auto dash = text.find('-'); dash != std::string::npos) {
    auto day_part = text.substr(0, dash);
    auto [p, ec] = std::from_chars(day_part.data(),
                                   day_part.data() + day_part.size(), days);
    if (ec != std::errc{} || p != day_part.data() + day_part.size() ||
        days < 0) {
      return -1;
    }
    rest = text.substr(dash + 1);
  }
  // Split remaining "A[:B[:C]]" fields.
  std::vector<std::int64_t> fields;
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    auto next = rest.find(':', pos);
    auto token = rest.substr(pos, next == std::string::npos ? std::string::npos
                                                            : next - pos);
    std::int64_t value = 0;
    auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || p != token.data() + token.size() || value < 0) {
      return -1;
    }
    fields.push_back(value);
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  if (fields.empty() || fields.size() > 3) return -1;
  std::int64_t seconds = 0;
  if (fields.size() == 1) {
    // Bare number: minutes with a day prefix (SLURM "D-HH"), else seconds.
    seconds = (days > 0) ? fields[0] * 3600 : fields[0];
  } else if (fields.size() == 2) {
    seconds = fields[0] * 60 + fields[1];
  } else {
    seconds = fields[0] * 3600 + fields[1] * 60 + fields[2];
  }
  return (days * 86400 + seconds) * kSecond;
}

}  // namespace cosched
