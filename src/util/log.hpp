// Leveled logging. The simulator is silent by default (level Warn);
// examples raise the level with --verbose. Messages go to stderr so table
// output on stdout stays machine-parsable.
#pragma once

#include <sstream>
#include <string>

namespace cosched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace cosched

#define COSCHED_LOG(level, stream_expr)                               \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::cosched::log_level())) {                   \
      std::ostringstream oss_;                                        \
      oss_ << stream_expr;                                            \
      ::cosched::detail::log_emit(level, oss_.str());                 \
    }                                                                 \
  } while (false)

#define COSCHED_DEBUG(stream_expr) \
  COSCHED_LOG(::cosched::LogLevel::kDebug, stream_expr)
#define COSCHED_INFO(stream_expr) \
  COSCHED_LOG(::cosched::LogLevel::kInfo, stream_expr)
#define COSCHED_WARN(stream_expr) \
  COSCHED_LOG(::cosched::LogLevel::kWarn, stream_expr)
#define COSCHED_ERROR(stream_expr) \
  COSCHED_LOG(::cosched::LogLevel::kError, stream_expr)
