#include "util/log.hpp"

#include <cstdio>
#include <mutex>
#include <string>

namespace cosched {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // Parallel sweeps log from worker threads: assemble the line first and
  // write it under one mutex so concurrent messages never interleave
  // mid-line.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace cosched
