#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace cosched {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  COSCHED_CHECK_MSG(!first_.empty(), "value written outside any scope");
  if (!first_.back()) out_ << ',';
  first_.back() = false;
}

void JsonWriter::key_prefix(const std::string& key) {
  comma();
  out_ << '"' << escape(key) << "\":";
}

void JsonWriter::number(double v) {
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no NaN/inf
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ << buf;
}

JsonWriter& JsonWriter::begin_object() {
  if (!first_.empty()) comma();
  out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& key) {
  key_prefix(key);
  out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  COSCHED_CHECK(!first_.empty());
  out_ << '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  key_prefix(key);
  out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  if (!first_.empty()) comma();
  out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  COSCHED_CHECK(!first_.empty());
  out_ << ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, const std::string& v) {
  key_prefix(key);
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, const char* v) {
  return value(key, std::string(v));
}

JsonWriter& JsonWriter::value(const std::string& key, double v) {
  key_prefix(key);
  number(v);
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, std::int64_t v) {
  key_prefix(key);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, int v) {
  return value(key, static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(const std::string& key, bool v) {
  key_prefix(key);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  number(v);
  return *this;
}

std::string JsonWriter::str() const {
  COSCHED_CHECK_MSG(first_.empty(), "unclosed JSON scope");
  return out_.str();
}

// --- JsonValue -------------------------------------------------------------

bool JsonValue::as_bool() const {
  COSCHED_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  COSCHED_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  COSCHED_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  COSCHED_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  COSCHED_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  COSCHED_CHECK_MSG(v != nullptr, "JSON object has no key '" << key << "'");
  return *v;
}

std::vector<std::string> JsonValue::keys() const {
  COSCHED_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  std::vector<std::string> out;
  out.reserve(object_.size());
  for (const auto& [k, v] : object_) out.push_back(k);
  return out;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(items);
  return j;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(members);
  return j;
}

// --- parse_json ------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error("JSON parse error at line " + std::to_string(line) +
                ", column " + std::to_string(col) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape digit");
            }
          }
          // The writer only emits \u00XX for control characters; reject
          // anything wider rather than mis-decode it.
          if (code > 0xff) fail("unsupported \\u escape beyond U+00FF");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) {
        pos_ = start;
        fail("invalid number '" + token + "'");
      }
      return JsonValue::number(v);
    } catch (const std::exception&) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace cosched
