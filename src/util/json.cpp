#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace cosched {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  COSCHED_CHECK_MSG(!first_.empty(), "value written outside any scope");
  if (!first_.back()) out_ << ',';
  first_.back() = false;
}

void JsonWriter::key_prefix(const std::string& key) {
  comma();
  out_ << '"' << escape(key) << "\":";
}

void JsonWriter::number(double v) {
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no NaN/inf
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ << buf;
}

JsonWriter& JsonWriter::begin_object() {
  if (!first_.empty()) comma();
  out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& key) {
  key_prefix(key);
  out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  COSCHED_CHECK(!first_.empty());
  out_ << '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  key_prefix(key);
  out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  if (!first_.empty()) comma();
  out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  COSCHED_CHECK(!first_.empty());
  out_ << ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, const std::string& v) {
  key_prefix(key);
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, const char* v) {
  return value(key, std::string(v));
}

JsonWriter& JsonWriter::value(const std::string& key, double v) {
  key_prefix(key);
  number(v);
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, std::int64_t v) {
  key_prefix(key);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, int v) {
  return value(key, static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(const std::string& key, bool v) {
  key_prefix(key);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  number(v);
  return *this;
}

std::string JsonWriter::str() const {
  COSCHED_CHECK_MSG(first_.empty(), "unclosed JSON scope");
  return out_.str();
}

}  // namespace cosched
