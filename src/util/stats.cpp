#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cosched {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ = (n1 * mean_ + n2 * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  COSCHED_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double s = 0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& values,
                                     double level, Pcg32& rng, int resamples) {
  ConfidenceInterval ci;
  ci.mean = mean_of(values);
  if (values.size() < 2) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = static_cast<std::uint32_t>(values.size());
  for (int r = 0; r < resamples; ++r) {
    double s = 0;
    for (std::uint32_t i = 0; i < n; ++i) s += values[rng.next_below(n)];
    means.push_back(s / n);
  }
  const double alpha = 1.0 - level;
  ci.lo = quantile(means, alpha / 2.0);
  ci.hi = quantile(std::move(means), 1.0 - alpha / 2.0);
  return ci;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  COSCHED_CHECK(buckets > 0 && lo < hi);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::edge(std::size_t bucket) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

std::vector<double> Histogram::cdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  std::size_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    out[i] = total_ ? static_cast<double>(running) /
                          static_cast<double>(total_)
                    : 0.0;
  }
  return out;
}

}  // namespace cosched
