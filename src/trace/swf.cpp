#include "trace/swf.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace cosched::trace {

std::optional<SwfRecord> SwfReader::next() {
  while (std::getline(in_, line_)) {
    ++line_no_;
    // +1 for the newline getline consumed; the final unterminated line of
    // a trace under-counts by one byte, which the counter's purpose
    // (proving the replay streamed the file, not slurped it) tolerates.
    bytes_read_ += line_.size() + 1;
    // Strip comments and skip blanks.
    if (auto pos = line_.find(';'); pos != std::string::npos) {
      line_.resize(pos);
    }
    std::istringstream fields(line_);
    SwfRecord r;
    if (!(fields >> r.job_number)) continue;  // blank or comment-only line
    const bool ok =
        static_cast<bool>(fields >> r.submit_time >> r.wait_time >>
                          r.run_time >> r.procs_used >> r.avg_cpu_time >>
                          r.memory_used >> r.procs_requested >>
                          r.time_requested >> r.memory_requested >> r.status >>
                          r.user_id >> r.group_id >> r.app_number >>
                          r.queue_number >> r.partition_number >>
                          r.preceding_job >> r.think_time);
    if (!ok) {
      // Archive traces do contain short/garbled lines; skip and count them
      // instead of abandoning the replay. First offender logs its line.
      if (++malformed_ == 1) {
        COSCHED_WARN("SWF line " << line_no_
                                 << ": expected 18 fields, got fewer; "
                                    "skipping (further skips counted)");
      }
      continue;
    }
    return r;
  }
  return std::nullopt;
}

std::vector<SwfRecord> read_swf(std::istream& in, std::size_t* malformed) {
  std::vector<SwfRecord> out;
  SwfReader reader(in);
  while (auto r = reader.next()) out.push_back(*r);
  if (reader.malformed_lines() > 0) {
    COSCHED_WARN("SWF stream: skipped " << reader.malformed_lines()
                                        << " malformed line(s)");
  }
  if (malformed != nullptr) *malformed = reader.malformed_lines();
  return out;
}

std::vector<SwfRecord> read_swf_file(const std::string& path,
                                     std::size_t* malformed) {
  std::ifstream in(path);
  COSCHED_REQUIRE(in.good(), "cannot open SWF file '" << path << "'");
  return read_swf(in, malformed);
}

void write_swf(std::ostream& out, const std::vector<SwfRecord>& records,
               const std::string& header_note) {
  out << "; SWF trace written by CoSched\n";
  out << "; Convention: processor fields carry whole-node counts\n";
  if (!header_note.empty()) out << "; " << header_note << "\n";
  out << "; Fields: job submit wait run procs avg_cpu mem procs_req "
         "time_req mem_req status uid gid app queue partition preceding "
         "think\n";
  for (const auto& r : records) {
    out << r.job_number << ' ' << r.submit_time << ' ' << r.wait_time << ' '
        << r.run_time << ' ' << r.procs_used << ' ' << r.avg_cpu_time << ' '
        << r.memory_used << ' ' << r.procs_requested << ' '
        << r.time_requested << ' ' << r.memory_requested << ' ' << r.status
        << ' ' << r.user_id << ' ' << r.group_id << ' ' << r.app_number << ' '
        << r.queue_number << ' ' << r.partition_number << ' '
        << r.preceding_job << ' ' << r.think_time << '\n';
  }
}

void write_swf_file(const std::string& path,
                    const std::vector<SwfRecord>& records,
                    const std::string& header_note) {
  std::ofstream out(path);
  COSCHED_REQUIRE(out.good(), "cannot write SWF file '" << path << "'");
  write_swf(out, records, header_note);
}

workload::Job job_from_swf(const SwfRecord& r, int app_count) {
  COSCHED_REQUIRE(r.job_number >= 0,
                  "SWF record with negative job number " << r.job_number);
  workload::Job job;
  job.id = r.job_number;
  job.user = "uid" + std::to_string(r.user_id >= 0 ? r.user_id : 0);
  const std::int64_t procs =
      r.procs_requested > 0 ? r.procs_requested : r.procs_used;
  COSCHED_REQUIRE(procs > 0, "SWF job " << r.job_number
                                        << " has no processor count");
  job.nodes = static_cast<int>(procs);
  job.submit_time = (r.submit_time > 0 ? r.submit_time : 0) * kSecond;
  COSCHED_REQUIRE(r.run_time > 0 || r.time_requested > 0,
                  "SWF job " << r.job_number
                             << " has neither runtime nor request");
  job.base_runtime =
      (r.run_time > 0 ? r.run_time : r.time_requested) * kSecond;
  job.walltime_limit =
      (r.time_requested > 0 ? r.time_requested : r.run_time) * kSecond;
  if (job.walltime_limit < job.base_runtime) {
    // Some archive traces record runtime past the request (grace kills);
    // clamp so replays are feasible.
    job.walltime_limit = job.base_runtime;
  }
  if (app_count > 0) {
    const std::int64_t app = r.app_number >= 0 ? r.app_number : r.job_number;
    job.app = static_cast<AppId>(app % app_count);
  }
  return job;
}

workload::JobList jobs_from_swf(const std::vector<SwfRecord>& records,
                                int app_count) {
  workload::JobList jobs;
  jobs.reserve(records.size());
  for (const auto& r : records) {
    jobs.push_back(job_from_swf(r, app_count));
  }
  return jobs;
}

SwfJobSource::SwfJobSource(std::istream& in, int app_count)
    : reader_(in), app_count_(app_count) {}

SwfJobSource::SwfJobSource(const std::string& path, int app_count)
    : file_(std::make_unique<std::ifstream>(path)),
      reader_(*file_),
      app_count_(app_count) {
  COSCHED_REQUIRE(file_->good(), "cannot open SWF file '" << path << "'");
}

SwfJobSource::~SwfJobSource() = default;

std::optional<workload::Job> SwfJobSource::next() {
  std::optional<SwfRecord> record = reader_.next();
  if (!record) {
    // The reader already warned (once) at the first skip; at drain the
    // total surfaces as a registry counter rather than a second log line.
    // Guarded so polling next() past the end never double-counts.
    if (!skips_reported_ && registry_ != nullptr) {
      skips_reported_ = true;
      if (reader_.malformed_lines() > 0) {
        registry_->counter("swf_malformed_lines")
            .inc(reader_.malformed_lines());
      }
      // Total trace bytes consumed: together with the flat resident-job
      // gauges this shows the replay streamed the file end to end.
      registry_->counter("swf_bytes_read").inc(reader_.bytes_read());
    }
    return std::nullopt;
  }
  workload::Job job = job_from_swf(*record, app_count_);
  // Lazy submission scheduling pulls arrivals one at a time, so the trace
  // must already be in submit order (the SWF convention).
  COSCHED_REQUIRE(job.submit_time >= last_submit_,
                  "SWF trace not sorted by submit time at job "
                      << job.id << "; streaming replay needs a sorted trace");
  last_submit_ = job.submit_time;
  return job;
}

std::vector<SwfRecord> jobs_to_swf(const workload::JobList& jobs) {
  std::vector<SwfRecord> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    SwfRecord r;
    r.job_number = job.id;
    r.submit_time = job.submit_time / kSecond;
    r.wait_time = job.wait_time() >= 0 ? job.wait_time() / kSecond : -1;
    // For jobs that ran, the observed elapsed time; for jobs that never
    // ran (archiving a workload rather than a schedule), the ground-truth
    // runtime, so a replay reproduces the same work.
    r.run_time = (job.start_time >= 0 && job.end_time >= 0)
                     ? (job.end_time - job.start_time) / kSecond
                     : (job.base_runtime > 0 ? job.base_runtime / kSecond
                                             : -1);
    r.procs_used = job.nodes;
    r.procs_requested = job.nodes;
    r.time_requested = job.walltime_limit / kSecond;
    switch (job.state) {
      case workload::JobState::kCompleted: r.status = 1; break;
      case workload::JobState::kTimeout: r.status = 0; break;
      case workload::JobState::kCancelled: r.status = 5; break;
      default: r.status = -1; break;
    }
    r.app_number = job.app;
    out.push_back(r);
  }
  return out;
}

}  // namespace cosched::trace
