#include "trace/gantt.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

#include "util/check.hpp"

namespace cosched::trace {

void write_gantt_csv(std::ostream& out, const workload::JobList& jobs,
                     const apps::Catalog& catalog) {
  out << "job,app,node,start_s,end_s,kind,state\n";
  for (const auto& job : jobs) {
    if (job.start_time < 0 || job.end_time < 0) continue;
    const std::string app_name =
        (job.app >= 0 && job.app < catalog.size()) ? catalog.get(job.app).name
                                                   : "-";
    for (NodeId node : job.alloc_nodes) {
      out << job.id << ',' << app_name << ',' << node << ','
          << to_seconds(job.start_time) << ',' << to_seconds(job.end_time)
          << ','
          << (job.alloc_kind == cluster::AllocationKind::kPrimary
                  ? "primary"
                  : "secondary")
          << ',' << workload::to_string(job.state) << '\n';
    }
  }
}

void write_gantt_csv_file(const std::string& path,
                          const workload::JobList& jobs,
                          const apps::Catalog& catalog) {
  std::ofstream out(path);
  COSCHED_REQUIRE(out.good(), "cannot write gantt file '" << path << "'");
  write_gantt_csv(out, jobs, catalog);
}

std::string ascii_gantt(const workload::JobList& jobs, int machine_nodes,
                        int width) {
  COSCHED_CHECK(machine_nodes > 0 && width > 0);
  SimTime t_min = kTimeInfinity, t_max = 0;
  for (const auto& job : jobs) {
    if (job.start_time < 0 || job.end_time < 0) continue;
    t_min = std::min(t_min, job.start_time);
    t_max = std::max(t_max, job.end_time);
  }
  if (t_min >= t_max) return "(empty schedule)\n";

  std::vector<std::vector<int>> occupancy(
      static_cast<std::size_t>(machine_nodes),
      std::vector<int>(static_cast<std::size_t>(width), 0));
  const double span = static_cast<double>(t_max - t_min);
  for (const auto& job : jobs) {
    if (job.start_time < 0 || job.end_time < 0) continue;
    auto bucket = [&](SimTime t) {
      auto b = static_cast<std::ptrdiff_t>(
          static_cast<double>(t - t_min) / span * width);
      return std::clamp<std::ptrdiff_t>(b, 0, width - 1);
    };
    const auto b0 = bucket(job.start_time);
    const auto b1 = bucket(job.end_time - 1);
    for (NodeId node : job.alloc_nodes) {
      if (node < 0 || node >= machine_nodes) continue;
      for (auto b = b0; b <= b1; ++b) {
        ++occupancy[static_cast<std::size_t>(node)]
                   [static_cast<std::size_t>(b)];
      }
    }
  }

  std::string out;
  out.reserve(static_cast<std::size_t>(machine_nodes) *
              (static_cast<std::size_t>(width) + 8));
  for (int n = 0; n < machine_nodes; ++n) {
    out += "n";
    const std::string id = std::to_string(n);
    out += id;
    out += std::string(id.size() < 3 ? 3 - id.size() : 0, ' ');
    out += '|';
    for (int b = 0; b < width; ++b) {
      const int k =
          occupancy[static_cast<std::size_t>(n)][static_cast<std::size_t>(b)];
      out += k == 0 ? '.' : (k == 1 ? '#' : static_cast<char>('0' + std::min(k, 9)));
    }
    out += "|\n";
  }
  return out;
}

}  // namespace cosched::trace
