// Schedule export for visualization: one CSV row per (job, node) occupancy
// interval, which external plotting turns into the classic node/time Gantt
// chart of a batch schedule. Shared intervals are visible as two jobs on
// one node.
#pragma once

#include <iosfwd>
#include <string>

#include "apps/catalog.hpp"
#include "workload/job.hpp"

namespace cosched::trace {

/// Writes "job,app,node,start_s,end_s,kind,state" rows for finished jobs.
void write_gantt_csv(std::ostream& out, const workload::JobList& jobs,
                     const apps::Catalog& catalog);

void write_gantt_csv_file(const std::string& path,
                          const workload::JobList& jobs,
                          const apps::Catalog& catalog);

/// Renders a coarse ASCII occupancy chart (nodes x time buckets) for quick
/// terminal inspection; '.'=idle, '#'=one job, '2'=shared (2 jobs), etc.
std::string ascii_gantt(const workload::JobList& jobs, int machine_nodes,
                        int width = 80);

}  // namespace cosched::trace
