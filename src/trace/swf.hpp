// Standard Workload Format (SWF) I/O.
//
// SWF is the community interchange format for batch-system traces
// (Feitelson's Parallel Workloads Archive): one job per line, 18
// whitespace-separated integer fields, ';' comment lines forming the header.
// We map CoSched's whole-node job model onto it by storing node counts in
// the processor fields (documented in the emitted header).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace cosched::trace {

/// One SWF record. Field names follow the SWF specification; -1 means
/// "not available" throughout, as the spec prescribes.
struct SwfRecord {
  std::int64_t job_number = -1;
  std::int64_t submit_time = -1;      ///< seconds since trace start
  std::int64_t wait_time = -1;        ///< seconds
  std::int64_t run_time = -1;         ///< seconds
  std::int64_t procs_used = -1;
  double avg_cpu_time = -1;
  std::int64_t memory_used = -1;
  std::int64_t procs_requested = -1;
  std::int64_t time_requested = -1;   ///< walltime estimate, seconds
  std::int64_t memory_requested = -1;
  std::int64_t status = -1;           ///< 1 completed, 0 failed, 5 cancelled
  std::int64_t user_id = -1;
  std::int64_t group_id = -1;
  std::int64_t app_number = -1;
  std::int64_t queue_number = -1;
  std::int64_t partition_number = -1;
  std::int64_t preceding_job = -1;
  std::int64_t think_time = -1;
};

/// Parses an SWF stream. Comment/blank lines are skipped; malformed data
/// lines raise cosched::Error with the line number.
std::vector<SwfRecord> read_swf(std::istream& in);
std::vector<SwfRecord> read_swf_file(const std::string& path);

/// Writes records with a descriptive header.
void write_swf(std::ostream& out, const std::vector<SwfRecord>& records,
               const std::string& header_note = "");
void write_swf_file(const std::string& path,
                    const std::vector<SwfRecord>& records,
                    const std::string& header_note = "");

/// Converts submissions from SWF records: submit time, size, walltime
/// request, and (when present) actual runtime become the ground-truth
/// runtime. `app_count` maps SWF app numbers onto catalog ids by modulo;
/// pass 0 to leave apps unassigned (-1).
workload::JobList jobs_from_swf(const std::vector<SwfRecord>& records,
                                int app_count);

/// Converts finished jobs to SWF records (for archiving simulated runs).
std::vector<SwfRecord> jobs_to_swf(const workload::JobList& jobs);

}  // namespace cosched::trace
