// Standard Workload Format (SWF) I/O.
//
// SWF is the community interchange format for batch-system traces
// (Feitelson's Parallel Workloads Archive): one job per line, 18
// whitespace-separated integer fields, ';' comment lines forming the header.
// We map CoSched's whole-node job model onto it by storing node counts in
// the processor fields (documented in the emitted header).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "workload/job.hpp"
#include "workload/source.hpp"

namespace cosched::trace {

/// One SWF record. Field names follow the SWF specification; -1 means
/// "not available" throughout, as the spec prescribes.
struct SwfRecord {
  std::int64_t job_number = -1;
  std::int64_t submit_time = -1;      ///< seconds since trace start
  std::int64_t wait_time = -1;        ///< seconds
  std::int64_t run_time = -1;         ///< seconds
  std::int64_t procs_used = -1;
  double avg_cpu_time = -1;
  std::int64_t memory_used = -1;
  std::int64_t procs_requested = -1;
  std::int64_t time_requested = -1;   ///< walltime estimate, seconds
  std::int64_t memory_requested = -1;
  std::int64_t status = -1;           ///< 1 completed, 0 failed, 5 cancelled
  std::int64_t user_id = -1;
  std::int64_t group_id = -1;
  std::int64_t app_number = -1;
  std::int64_t queue_number = -1;
  std::int64_t partition_number = -1;
  std::int64_t preceding_job = -1;
  std::int64_t think_time = -1;
};

/// Streaming SWF parser: pulls one record at a time off a line-buffered
/// stream, so an arbitrarily long trace never materializes. Comment/blank
/// lines are skipped. Malformed/short data lines (archives do contain
/// them) are skipped and counted — the first one logs a warning with its
/// line number; callers report the total via malformed_lines().
class SwfReader {
 public:
  /// `in` must outlive the reader.
  explicit SwfReader(std::istream& in) : in_(in) {}

  /// The next record, or nullopt at end of stream.
  std::optional<SwfRecord> next();

  /// Data lines skipped because they did not parse as 18 fields.
  std::size_t malformed_lines() const { return malformed_; }

  /// Bytes consumed off the stream so far (lines + newlines). Grows as
  /// records are pulled — evidence the reader streams rather than slurps.
  std::size_t bytes_read() const { return bytes_read_; }

 private:
  std::istream& in_;
  std::string line_;  // reused per getline: one resident line buffer
  std::size_t line_no_ = 0;
  std::size_t malformed_ = 0;
  std::size_t bytes_read_ = 0;
};

/// Parses an SWF stream into a vector (materializing convenience wrapper
/// over SwfReader). Malformed data lines are skipped with a counted
/// warning; pass `malformed` to receive the skip count.
std::vector<SwfRecord> read_swf(std::istream& in,
                                std::size_t* malformed = nullptr);
std::vector<SwfRecord> read_swf_file(const std::string& path,
                                     std::size_t* malformed = nullptr);

/// Writes records with a descriptive header.
void write_swf(std::ostream& out, const std::vector<SwfRecord>& records,
               const std::string& header_note = "");
void write_swf_file(const std::string& path,
                    const std::vector<SwfRecord>& records,
                    const std::string& header_note = "");

/// Converts one SWF record into a submission: submit time, size, walltime
/// request, and (when present) actual runtime become the ground-truth
/// runtime. `app_count` maps SWF app numbers onto catalog ids by modulo;
/// pass 0 to leave apps unassigned (-1). Throws cosched::Error on records
/// that cannot describe a job (no processor count, no runtime).
workload::Job job_from_swf(const SwfRecord& record, int app_count);

/// Materializing wrapper over job_from_swf.
workload::JobList jobs_from_swf(const std::vector<SwfRecord>& records,
                                int app_count);

/// Streaming trace replay: a JobSource that converts SWF records straight
/// off the stream, so replaying a 100k-job archive keeps O(1) records
/// resident. Requires the trace to be sorted by submit time (the SWF
/// convention; enforced because lazy submission relies on it).
class SwfJobSource final : public workload::JobSource {
 public:
  /// Reads from a borrowed stream (must outlive the source).
  SwfJobSource(std::istream& in, int app_count);
  /// Opens and owns `path`.
  SwfJobSource(const std::string& path, int app_count);
  ~SwfJobSource() override;  // out-of-line: std::ifstream is incomplete here

  std::optional<workload::Job> next() override;

  std::size_t malformed_lines() const { return reader_.malformed_lines(); }

  /// Surfaces malformed-line skips as the `swf_malformed_lines` counter
  /// and total bytes consumed as `swf_bytes_read` in `registry` when the
  /// stream drains (one counter set, one warning line from the reader's
  /// first skip — no silent count field). Non-owning; nullptr detaches.
  void bind_registry(obs::Registry* registry) { registry_ = registry; }

 private:
  std::unique_ptr<std::ifstream> file_;  ///< set iff constructed from a path
  SwfReader reader_;
  int app_count_;
  SimTime last_submit_ = 0;
  obs::Registry* registry_ = nullptr;  ///< non-owning, may be nullptr
  bool skips_reported_ = false;  ///< counter set once, at first drain
};

/// Converts finished jobs to SWF records (for archiving simulated runs).
std::vector<SwfRecord> jobs_to_swf(const workload::JobList& jobs);

}  // namespace cosched::trace
