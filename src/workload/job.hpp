// Batch jobs: the submission request plus the lifecycle record the
// controller fills in as the job moves through the system.
#pragma once

#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "util/types.hpp"

namespace cosched::workload {

enum class JobState : std::int8_t {
  kPending,    ///< submitted, waiting in queue
  kHeld,       ///< submitted, waiting on a dependency
  kRunning,    ///< allocated and executing
  kCompleted,  ///< finished its work
  kTimeout,    ///< killed at its walltime limit before finishing
  kCancelled,  ///< removed without running
};

const char* to_string(JobState s);

struct Job {
  // --- Submission request ---------------------------------------------------
  JobId id = kInvalidJob;
  std::string user;
  AppId app = -1;
  int nodes = 1;                  ///< whole-node request (capability model)
  SimTime submit_time = 0;
  SimDuration walltime_limit = 0; ///< user estimate; job is killed past it
  bool shareable = true;          ///< user permits SMT co-allocation
  /// "afterok" dependency: held until that job completes; cancelled if it
  /// fails. Must reference an already-submitted job. kInvalidJob = none.
  JobId depends_on = kInvalidJob;
  /// Target partition for multi-partition sites; empty = site default.
  std::string partition;

  // --- Ground truth (hidden from schedulers) ---------------------------------
  /// Actual runtime if run exclusively. Schedulers only see walltime_limit;
  /// the execution model dilates this under co-location.
  SimDuration base_runtime = 0;

  // --- Lifecycle record (filled by the controller) ---------------------------
  JobState state = JobState::kPending;
  SimTime start_time = -1;
  SimTime end_time = -1;
  cluster::AllocationKind alloc_kind = cluster::AllocationKind::kPrimary;
  std::vector<NodeId> alloc_nodes;
  /// Total dilation experienced: actual_runtime / base_runtime. 1.0 when
  /// never co-located.
  double observed_dilation = 1.0;
  /// Times the job was requeued after a node failure killed its run.
  int requeues = 0;

  // --- Derived ----------------------------------------------------------------
  /// Useful work in node-seconds (the exclusive cost of the job).
  double work_node_seconds() const {
    return static_cast<double>(nodes) * to_seconds(base_runtime);
  }
  SimDuration wait_time() const {
    return (start_time >= 0) ? start_time - submit_time : -1;
  }
  SimDuration turnaround() const {
    return (end_time >= 0) ? end_time - submit_time : -1;
  }
  bool finished() const {
    return state == JobState::kCompleted || state == JobState::kTimeout;
  }
};

using JobList = std::vector<Job>;

}  // namespace cosched::workload
