#include "workload/job.hpp"

namespace cosched::workload {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending: return "PENDING";
    case JobState::kHeld: return "HELD";
    case JobState::kRunning: return "RUNNING";
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kTimeout: return "TIMEOUT";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

}  // namespace cosched::workload
