#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cosched::workload {

Generator::Generator(GeneratorParams params, const apps::Catalog& catalog)
    : params_(std::move(params)), catalog_(catalog) {
  COSCHED_REQUIRE(params_.job_count > 0, "job_count must be positive");
  COSCHED_REQUIRE(!params_.size_mix.empty(), "size_mix must not be empty");
  for (const auto& [nodes, weight] : params_.size_mix) {
    COSCHED_REQUIRE(nodes > 0 && weight >= 0,
                    "invalid size_mix entry (" << nodes << ", " << weight
                                               << ")");
  }
  COSCHED_REQUIRE(params_.est_factor_min >= 1.0 &&
                      params_.est_factor_max >= params_.est_factor_min,
                  "estimate factors must satisfy 1 <= min <= max");
  COSCHED_REQUIRE(catalog_.size() > 0, "catalog is empty");
  COSCHED_REQUIRE(params_.diurnal_amplitude >= 0 &&
                      params_.diurnal_amplitude < 1.0,
                  "diurnal_amplitude must be in [0, 1)");
  COSCHED_REQUIRE(params_.app_weights.empty() ||
                      static_cast<int>(params_.app_weights.size()) ==
                          catalog_.size(),
                  "app_weights size must match catalog size");

  size_weights_.reserve(params_.size_mix.size());
  for (const auto& [nodes, weight] : params_.size_mix) {
    (void)nodes;
    size_weights_.push_back(weight);
  }

  // Stream mode: offered load rho means the queue receives rho * capacity
  // node-seconds of work per second, i.e. arrival rate =
  // rho * machine_nodes / E[job node-seconds].
  if (params_.arrival == ArrivalMode::kStream) {
    COSCHED_REQUIRE(params_.offered_load > 0 && params_.machine_nodes > 0,
                    "stream mode needs offered_load and machine_nodes > 0");
    arrival_rate_ = params_.offered_load *
                    static_cast<double>(params_.machine_nodes) /
                    mean_job_node_seconds();
  }
}

double Generator::mean_job_node_seconds() const {
  // E[nodes] * E[per-node runtime]. Runtime on n nodes is roughly
  // work / n (ignoring the efficiency derate), so node-seconds ~ work:
  // E[lognormal] = exp(mu + sigma^2/2).
  const double mean_work =
      std::exp(params_.work_mu + params_.work_sigma * params_.work_sigma / 2);
  return mean_work;
}

Job Generator::generate_one(Pcg32& rng, int index, double& clock_s) const {
  Job job;
  job.id = index + 1;
  job.user = "user" + std::to_string(rng.uniform_int(1, 16));

  const std::size_t app_idx = params_.app_weights.empty()
                                  ? rng.next_below(static_cast<std::uint32_t>(
                                        catalog_.size()))
                                  : rng.weighted_index(params_.app_weights);
  const apps::AppModel& app = catalog_.get(static_cast<AppId>(app_idx));
  job.app = app.id;

  job.nodes = params_.size_mix[rng.weighted_index(size_weights_)].first;

  // True exclusive runtime from single-node work through the app's
  // scaling curve.
  const double work_1 = rng.lognormal(params_.work_mu, params_.work_sigma);
  const double runtime_s = app.runtime_seconds(work_1, job.nodes);
  job.base_runtime = std::max<SimDuration>(from_seconds(runtime_s), kSecond);

  // Over-estimated walltime, rounded up to a whole minute like real
  // sbatch submissions.
  const double factor =
      rng.uniform(params_.est_factor_min, params_.est_factor_max);
  const auto est = static_cast<SimDuration>(
      static_cast<double>(job.base_runtime) * factor);
  job.walltime_limit = ((est + kMinute - 1) / kMinute) * kMinute;

  job.shareable = app.shareable && rng.bernoulli(params_.shareable_prob);

  if (params_.arrival == ArrivalMode::kStream) {
    if (params_.diurnal_amplitude > 0) {
      // Thinned Poisson: candidates at the peak rate, accepted with
      // probability rate(t)/peak. Rate peaks at simulated noon.
      const double amplitude = params_.diurnal_amplitude;
      const double peak = arrival_rate_ * (1.0 + amplitude);
      for (;;) {
        clock_s += rng.exponential(peak);
        const double phase =
            2.0 * std::numbers::pi * (clock_s - 21600.0) / 86400.0;
        const double rate =
            arrival_rate_ * (1.0 + amplitude * std::sin(phase));
        if (rng.next_double() < rate / peak) break;
      }
    } else {
      clock_s += rng.exponential(arrival_rate_);
    }
    job.submit_time = from_seconds(clock_s);
  } else {
    // Campaign: all at t=0 with a tiny deterministic stagger so submit
    // order is well-defined in logs.
    job.submit_time = index * kMillisecond;
  }
  return job;
}

JobList Generator::generate(Pcg32& rng) const {
  JobList jobs;
  jobs.reserve(static_cast<std::size_t>(params_.job_count));
  double clock_s = 0;
  for (int i = 0; i < params_.job_count; ++i) {
    jobs.push_back(generate_one(rng, i, clock_s));
  }
  return jobs;
}

std::optional<Job> GeneratorJobSource::next() {
  if (index_ >= generator_.params().job_count) return std::nullopt;
  return generator_.generate_one(rng_, index_++, clock_s_);
}

}  // namespace cosched::workload
