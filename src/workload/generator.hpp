// Synthetic workload generation.
//
// Two arrival regimes cover the paper's methodology:
//   * campaign: all jobs submitted in a burst at t=0 (the mini-app campaign
//     whose makespan/efficiency the headline table reports);
//   * stream: Poisson arrivals tuned to an offered load factor rho (the
//     load-sweep figure).
//
// Job sizes follow a discrete capability mix (powers of two), runtimes are
// log-normal per app, and user walltime estimates multiply the true runtime
// by a uniform over-estimation factor — the classic observed behaviour that
// makes backfill interesting.
#pragma once

#include <vector>

#include "apps/catalog.hpp"
#include "util/rng.hpp"
#include "workload/job.hpp"
#include "workload/source.hpp"

namespace cosched::workload {

enum class ArrivalMode : std::int8_t { kCampaign, kStream };

struct GeneratorParams {
  int job_count = 500;
  ArrivalMode arrival = ArrivalMode::kCampaign;

  /// Stream mode: mean inter-arrival time derived from this offered load
  /// (fraction of machine node capacity requested per unit time).
  double offered_load = 0.9;
  int machine_nodes = 32;  ///< needed to convert offered load to a rate

  /// Stream mode: day/night arrival modulation in [0, 1). The arrival rate
  /// follows lambda * (1 + A sin(...)), peaking at simulated noon and
  /// bottoming at midnight (thinned Poisson process). 0 = stationary.
  double diurnal_amplitude = 0.0;

  /// Discrete (nodes, weight) size mix. Defaults to a capability-class mix.
  std::vector<std::pair<int, double>> size_mix = {
      {1, 0.30}, {2, 0.25}, {4, 0.20}, {8, 0.15}, {16, 0.10}};

  /// Log-normal single-node work (node-seconds): exp(mu + sigma N(0,1)).
  /// Defaults give a median of ~1h of single-node work.
  double work_mu = 8.2;     ///< log(3640 s)
  double work_sigma = 0.8;

  /// User walltime estimate = actual runtime * U[est_factor_min, max],
  /// rounded up to a minute. Factors >= 1 (users over-estimate; the
  /// 1.5 floor keeps the co-allocation dilation cap of 1.4 safe).
  double est_factor_min = 1.5;
  double est_factor_max = 3.0;

  /// Probability a job opts into SMT sharing (and its app allows it).
  double shareable_prob = 1.0;

  /// Apps drawn uniformly unless weights given (must match catalog size).
  std::vector<double> app_weights;
};

class Generator {
 public:
  Generator(GeneratorParams params, const apps::Catalog& catalog);

  /// Generates a job list ordered by submit time; ids are 1-based in
  /// submission order. Deterministic for a given rng state.
  JobList generate(Pcg32& rng) const;

  /// Generates the job `generate()` would produce at iteration `index`,
  /// drawing from `rng` in the identical order (same RNG state in, same
  /// job out). `clock_s` carries the stream-mode arrival clock between
  /// calls; start it at 0. This is the streaming primitive: a 100k-job
  /// workload can be pulled one job at a time without materializing.
  Job generate_one(Pcg32& rng, int index, double& clock_s) const;

  const GeneratorParams& params() const { return params_; }

  /// Mean work per job in node-seconds implied by the parameters
  /// (used to convert offered load into an arrival rate).
  double mean_job_node_seconds() const;

 private:
  GeneratorParams params_;
  const apps::Catalog& catalog_;
  /// Derived in the constructor so per-job generation allocates nothing.
  std::vector<double> size_weights_;
  double arrival_rate_ = 0;  ///< stream mode only
};

/// JobSource over a Generator: pulls jobs one at a time in submission
/// order, producing the exact sequence generate() materializes for the
/// same starting rng (verified by tests/workload_test.cpp).
class GeneratorJobSource final : public JobSource {
 public:
  /// `generator` must outlive the source; `rng` is copied (the source owns
  /// its stream position).
  GeneratorJobSource(const Generator& generator, Pcg32 rng)
      : generator_(generator), rng_(rng) {}

  std::optional<Job> next() override;

 private:
  const Generator& generator_;
  Pcg32 rng_;
  int index_ = 0;
  double clock_s_ = 0;
};

}  // namespace cosched::workload
