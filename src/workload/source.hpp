// Streaming job supply: a pull interface the controller drains one
// arrival at a time, so archive-scale traces and generated workloads
// never materialize as a full JobList. Implementations must yield jobs in
// nondecreasing submit_time order (the controller schedules each arrival
// as it is pulled) and be exhausted exactly once.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "workload/job.hpp"

namespace cosched::workload {

class JobSource {
 public:
  virtual ~JobSource() = default;
  /// The next job in nondecreasing submit order, nullopt when exhausted.
  virtual std::optional<Job> next() = 0;
};

/// Adapter streaming an in-memory list (tests, differential checks).
class ListSource final : public JobSource {
 public:
  explicit ListSource(const JobList& jobs) : jobs_(&jobs) {}
  std::optional<Job> next() override {
    if (index_ >= jobs_->size()) return std::nullopt;
    return (*jobs_)[index_++];
  }

 private:
  const JobList* jobs_;
  std::size_t index_ = 0;
};

}  // namespace cosched::workload
