#include "workload/campaign.hpp"

#include "util/check.hpp"

namespace cosched::workload {

namespace {

/// Caps the default size mix at the machine size so every job can run.
std::vector<std::pair<int, double>> capped_size_mix(int machine_nodes) {
  std::vector<std::pair<int, double>> mix;
  for (const auto& [nodes, weight] :
       GeneratorParams{}.size_mix) {
    if (nodes <= machine_nodes) {
      mix.emplace_back(nodes, weight);
    }
  }
  COSCHED_CHECK(!mix.empty());
  return mix;
}

/// Weights aligned with Catalog::trinity() order:
/// miniFE, miniGhost, AMG, UMT, SNAP, GTC, MILC, miniDFT.
std::vector<double> trinity_weights(double membound, double balanced,
                                    double compute) {
  return {membound, balanced, membound, balanced,
          membound, compute,  membound, compute};
}

GeneratorParams base_campaign(int machine_nodes, int job_count) {
  GeneratorParams p;
  p.job_count = job_count;
  p.arrival = ArrivalMode::kCampaign;
  p.machine_nodes = machine_nodes;
  p.size_mix = capped_size_mix(machine_nodes);
  return p;
}

}  // namespace

GeneratorParams trinity_campaign(int machine_nodes, int job_count) {
  GeneratorParams p = base_campaign(machine_nodes, job_count);
  p.app_weights = trinity_weights(1.0, 1.0, 1.0);
  return p;
}

GeneratorParams memory_bound_campaign(int machine_nodes, int job_count) {
  GeneratorParams p = base_campaign(machine_nodes, job_count);
  p.app_weights = trinity_weights(1.0, 0.0, 0.0);
  return p;
}

GeneratorParams compute_bound_campaign(int machine_nodes, int job_count) {
  GeneratorParams p = base_campaign(machine_nodes, job_count);
  p.app_weights = trinity_weights(0.0, 0.5, 1.0);
  return p;
}

GeneratorParams trinity_stream(int machine_nodes, int job_count,
                               double offered_load) {
  GeneratorParams p = trinity_campaign(machine_nodes, job_count);
  p.arrival = ArrivalMode::kStream;
  p.offered_load = offered_load;
  return p;
}

}  // namespace cosched::workload
