// Preset workload campaigns used by the reproduction benches.
//
// `trinity` is the paper-style campaign: a burst of Trinity mini-app jobs
// with a capability-class size mix. The skewed variants (all memory-bound /
// all compute-bound) exercise the crossover acceptance criterion: when
// nothing pairs well, co-allocation must not lose to its baseline.
#pragma once

#include "apps/catalog.hpp"
#include "workload/generator.hpp"

namespace cosched::workload {

struct CampaignSpec {
  GeneratorParams params;
  /// App weights interpretation requires the matching catalog.
  const apps::Catalog* catalog = nullptr;
};

/// The default Trinity campaign on `machine_nodes` nodes with `job_count`
/// jobs: uniform draw over the eight mini-apps, capability size mix capped
/// at the machine size.
GeneratorParams trinity_campaign(int machine_nodes, int job_count);

/// Same shape but only memory-bandwidth-bound apps get weight (miniFE,
/// SNAP, MILC, AMG): the adversarial mix where sharing cannot win.
GeneratorParams memory_bound_campaign(int machine_nodes, int job_count);

/// Only compute-leaning apps (GTC, miniDFT, UMT): pairs gain modestly.
GeneratorParams compute_bound_campaign(int machine_nodes, int job_count);

/// Stream variant of the Trinity mix at the given offered load.
GeneratorParams trinity_stream(int machine_nodes, int job_count,
                               double offered_load);

}  // namespace cosched::workload
