// The application catalog: the set of modeled applications available to a
// workload. The default catalog models the NERSC Trinity / APEX mini-apps
// the paper evaluates with; custom catalogs support ablations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/app_model.hpp"

namespace cosched::apps {

class Catalog {
 public:
  Catalog() = default;

  /// Adds an app; assigns and returns its id. Names must be unique.
  AppId add(AppModel app);

  const AppModel& get(AppId id) const;
  std::optional<AppId> find(const std::string& name) const;
  const AppModel& by_name(const std::string& name) const;

  int size() const { return static_cast<int>(apps_.size()); }
  const std::vector<AppModel>& all() const { return apps_; }

  /// The Trinity mini-app catalog (see catalog.cpp for the per-app
  /// characterization and its provenance).
  static Catalog trinity();

  /// A catalog of `n` synthetic apps spanning the stress space uniformly;
  /// used by property tests and ablations.
  static Catalog synthetic(int n);

 private:
  std::vector<AppModel> apps_;
};

}  // namespace cosched::apps
