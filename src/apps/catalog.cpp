#include "apps/catalog.hpp"

#include "util/check.hpp"

namespace cosched::apps {

AppId Catalog::add(AppModel app) {
  COSCHED_REQUIRE(!app.name.empty(), "app name must not be empty");
  COSCHED_REQUIRE(!find(app.name), "duplicate app name '" << app.name << "'");
  app.id = static_cast<AppId>(apps_.size());
  apps_.push_back(std::move(app));
  return apps_.back().id;
}

const AppModel& Catalog::get(AppId id) const {
  COSCHED_CHECK_MSG(id >= 0 && id < size(), "unknown app id " << id);
  return apps_[static_cast<std::size_t>(id)];
}

std::optional<AppId> Catalog::find(const std::string& name) const {
  for (const auto& app : apps_) {
    if (app.name == name) return app.id;
  }
  return std::nullopt;
}

const AppModel& Catalog::by_name(const std::string& name) const {
  auto id = find(name);
  COSCHED_REQUIRE(id, "unknown app '" << name << "'");
  return get(*id);
}

Catalog Catalog::trinity() {
  // Characterization of the NERSC Trinity / APEX mini-applications.
  //
  // The stress vectors encode the qualitative behaviour reported across the
  // mini-app literature (each app's own reference docs plus SMT/co-location
  // studies): which apps are DRAM-bandwidth bound (MiniFE's sparse solve,
  // MILC's staggered CG, SNAP's sweeps), latency/irregular bound (AMG
  // setup+cycle, MiniGhost halo phases), and compute-heavy (GTC's particle
  // push, MiniDFT's dense FFT/ZGEMM mix). Absolute values are calibrated so
  // the pairwise co-run matrix (bench R-F2) lands in the 0.8x-1.6x combined
  // throughput range observed for 2-way SMT co-scheduling of HPC codes.
  Catalog c;
  c.add(AppModel{
      .name = "miniFE",
      .app_class = AppClass::kMemoryBandwidthBound,
      .stress = {.issue = 0.35, .membw = 0.85, .cache = 0.55, .network = 0.15},
      .serial_fraction = 0.015,
      .comm_derate_per_doubling = 0.030,
      .shareable = true});
  c.add(AppModel{
      .name = "miniGhost",
      .app_class = AppClass::kNetworkBound,
      .stress = {.issue = 0.40, .membw = 0.60, .cache = 0.45, .network = 0.55},
      .serial_fraction = 0.020,
      .comm_derate_per_doubling = 0.050,
      .shareable = true});
  c.add(AppModel{
      .name = "AMG",
      .app_class = AppClass::kMemoryLatencyBound,
      .stress = {.issue = 0.30, .membw = 0.70, .cache = 0.65, .network = 0.35},
      .serial_fraction = 0.030,
      .comm_derate_per_doubling = 0.060,
      .shareable = true});
  c.add(AppModel{
      .name = "UMT",
      .app_class = AppClass::kBalanced,
      .stress = {.issue = 0.60, .membw = 0.55, .cache = 0.45, .network = 0.25},
      .serial_fraction = 0.020,
      .comm_derate_per_doubling = 0.035,
      .shareable = true});
  c.add(AppModel{
      .name = "SNAP",
      .app_class = AppClass::kMemoryBandwidthBound,
      .stress = {.issue = 0.40, .membw = 0.80, .cache = 0.60, .network = 0.30},
      .serial_fraction = 0.025,
      .comm_derate_per_doubling = 0.045,
      .shareable = true});
  c.add(AppModel{
      .name = "GTC",
      .app_class = AppClass::kComputeBound,
      .stress = {.issue = 0.85, .membw = 0.30, .cache = 0.30, .network = 0.20},
      .serial_fraction = 0.010,
      .comm_derate_per_doubling = 0.020,
      .shareable = true});
  c.add(AppModel{
      .name = "MILC",
      .app_class = AppClass::kMemoryBandwidthBound,
      .stress = {.issue = 0.45, .membw = 0.90, .cache = 0.50, .network = 0.35},
      .serial_fraction = 0.015,
      .comm_derate_per_doubling = 0.040,
      .shareable = true});
  c.add(AppModel{
      .name = "miniDFT",
      .app_class = AppClass::kComputeBound,
      .stress = {.issue = 0.90, .membw = 0.45, .cache = 0.35, .network = 0.30},
      .serial_fraction = 0.012,
      .comm_derate_per_doubling = 0.030,
      .shareable = true});
  return c;
}

Catalog Catalog::synthetic(int n) {
  COSCHED_CHECK(n > 0);
  Catalog c;
  for (int i = 0; i < n; ++i) {
    // Sweep issue pressure up while memory pressure comes down so the set
    // spans compute-bound ... memory-bound.
    const double t = (n == 1) ? 0.5
                              : static_cast<double>(i) /
                                    static_cast<double>(n - 1);
    AppModel app;
    app.name = "synth" + std::to_string(i);
    app.stress.issue = 0.2 + 0.7 * t;
    app.stress.membw = 0.9 - 0.7 * t;
    app.stress.cache = 0.3 + 0.4 * (1.0 - t);
    app.stress.network = 0.2;
    app.app_class = t > 0.66   ? AppClass::kComputeBound
                    : t < 0.33 ? AppClass::kMemoryBandwidthBound
                               : AppClass::kBalanced;
    c.add(std::move(app));
  }
  return c;
}

}  // namespace cosched::apps
