// Application performance models.
//
// The scheduler in the paper observes real executions of NERSC Trinity
// mini-applications; this repo substitutes a stress-vector model (see
// DESIGN.md "Substitutions"). Each application is characterized by how hard
// it drives the node resources that SMT co-location contends on:
//
//   issue   — fraction of per-core instruction-issue slots used when running
//             alone (compute-bound apps are high; memory-stalled apps low)
//   membw   — fraction of the node's DRAM bandwidth consumed
//   cache   — sensitivity to shared last-level-cache displacement
//   network — injection pressure on the NIC (co-located jobs share it)
//
// The interference model combines two vectors into per-job slowdowns; apps
// also carry an Amdahl-style scaling curve so multi-node runtimes derate
// realistically with node count.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace cosched::apps {

/// Broad application class, used for reporting and for class-based pairing
/// policies (a cheaper stand-in for full stress vectors).
enum class AppClass : std::int8_t {
  kComputeBound,
  kMemoryBandwidthBound,
  kMemoryLatencyBound,
  kNetworkBound,
  kBalanced,
};

const char* to_string(AppClass c);

/// Per-resource pressure exerted by one process per core, each in [0, 1].
struct StressVector {
  double issue = 0.5;
  double membw = 0.5;
  double cache = 0.5;
  double network = 0.2;
};

/// A modeled application (one Trinity mini-app).
struct AppModel {
  AppId id = -1;
  std::string name;
  AppClass app_class = AppClass::kBalanced;
  StressVector stress{};

  /// Serial fraction for the Amdahl/latency scaling curve. The paper's
  /// motivation is exactly that such apps cannot saturate all cores/nodes.
  double serial_fraction = 0.02;

  /// Communication derate per doubling of node count (captures halo /
  /// collective overhead growth; 0 = perfect scaling).
  double comm_derate_per_doubling = 0.03;

  /// Whether users typically mark this job shareable (--oversubscribe).
  /// IO- or latency-critical apps may opt out.
  bool shareable = true;

  /// Parallel efficiency at `nodes` relative to 1 node, in (0, 1].
  double parallel_efficiency(int nodes) const;

  /// Runtime on `nodes` nodes for a problem that takes `node_seconds_1`
  /// node-seconds on one node, in exclusive (non-shared) mode.
  double runtime_seconds(double node_seconds_1, int nodes) const;
};

}  // namespace cosched::apps
