#include "apps/app_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cosched::apps {

const char* to_string(AppClass c) {
  switch (c) {
    case AppClass::kComputeBound: return "compute";
    case AppClass::kMemoryBandwidthBound: return "mem-bw";
    case AppClass::kMemoryLatencyBound: return "mem-lat";
    case AppClass::kNetworkBound: return "network";
    case AppClass::kBalanced: return "balanced";
  }
  return "?";
}

double AppModel::parallel_efficiency(int nodes) const {
  COSCHED_CHECK(nodes >= 1);
  if (nodes == 1) return 1.0;
  const double n = nodes;
  // Amdahl term: speedup = 1 / (s + (1-s)/n); efficiency = speedup / n.
  const double amdahl =
      1.0 / (serial_fraction + (1.0 - serial_fraction) / n) / n;
  // Communication derate compounds per doubling.
  const double doublings = std::log2(n);
  const double comm = std::pow(1.0 - comm_derate_per_doubling, doublings);
  return amdahl * comm;
}

double AppModel::runtime_seconds(double node_seconds_1, int nodes) const {
  COSCHED_CHECK(node_seconds_1 > 0 && nodes >= 1);
  const double eff = parallel_efficiency(nodes);
  return node_seconds_1 / (static_cast<double>(nodes) * eff);
}

}  // namespace cosched::apps
