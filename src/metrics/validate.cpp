#include "metrics/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace cosched::metrics {

std::vector<Violation> validate_schedule(const workload::JobList& jobs,
                                         const ValidationOptions& options) {
  COSCHED_CHECK(options.machine_nodes > 0);
  COSCHED_CHECK(options.slots_per_node >= 1);
  std::vector<Violation> out;
  auto flag = [&out](JobId job, NodeId node, std::string message) {
    out.push_back({job, node, std::move(message)});
  };

  std::map<NodeId, std::vector<std::pair<SimTime, int>>> events;
  for (const auto& job : jobs) {
    if (!job.finished()) continue;

    if (job.submit_time > job.start_time) {
      flag(job.id, kInvalidNode, "started before submission");
    }
    if (job.start_time >= job.end_time) {
      flag(job.id, kInvalidNode, "non-positive elapsed time");
    }
    if (static_cast<int>(job.alloc_nodes.size()) != job.nodes) {
      flag(job.id, kInvalidNode,
           "allocation size " + std::to_string(job.alloc_nodes.size()) +
               " != requested " + std::to_string(job.nodes));
    }
    if (job.end_time - job.start_time > job.walltime_limit) {
      flag(job.id, kInvalidNode, "ran past its walltime limit");
    }
    if (job.observed_dilation < 1.0 - 1e-9) {
      flag(job.id, kInvalidNode, "dilation below 1.0");
    }
    if (job.state == workload::JobState::kCompleted && job.requeues == 0) {
      // elapsed must equal base * dilation (within tolerance). Requeued
      // jobs are exempt: the final attempt may resume from a checkpoint.
      const double elapsed = to_seconds(job.end_time - job.start_time);
      const double expected =
          to_seconds(job.base_runtime) * job.observed_dilation;
      const double tolerance =
          options.dilation_tolerance * to_seconds(job.base_runtime) + 0.01;
      if (std::abs(elapsed - expected) > tolerance) {
        flag(job.id, kInvalidNode, "elapsed time inconsistent with dilation");
      }
    }

    std::vector<NodeId> seen;
    for (NodeId n : job.alloc_nodes) {
      if (n < 0 || n >= options.machine_nodes) {
        flag(job.id, n, "allocation references node outside the machine");
        continue;
      }
      if (std::find(seen.begin(), seen.end(), n) != seen.end()) {
        flag(job.id, n, "node appears twice in one allocation");
        continue;
      }
      seen.push_back(n);
      events[n].emplace_back(job.start_time, +1);
      events[n].emplace_back(job.end_time, -1);
    }
  }

  for (auto& [node, evs] : events) {
    std::sort(evs.begin(), evs.end());
    int depth = 0;
    bool flagged = false;
    for (const auto& [time, delta] : evs) {
      (void)time;
      depth += delta;
      if (depth > options.slots_per_node && !flagged) {
        flag(kInvalidJob, node,
             "occupancy depth " + std::to_string(depth) + " exceeds " +
                 std::to_string(options.slots_per_node) + " slots");
        flagged = true;  // one report per node is enough
      }
    }
  }
  return out;
}

std::string to_string(const std::vector<Violation>& violations) {
  std::ostringstream oss;
  for (const auto& v : violations) {
    if (v.job != kInvalidJob) oss << "job " << v.job << ": ";
    if (v.node != kInvalidNode) oss << "node " << v.node << ": ";
    oss << v.message << '\n';
  }
  return oss.str();
}

}  // namespace cosched::metrics
