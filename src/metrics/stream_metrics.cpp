#include "metrics/stream_metrics.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace cosched::metrics {

void OccupancyMeter::reset(int nodes) {
  COSCHED_CHECK(nodes > 0);
  nodes_.assign(static_cast<std::size_t>(nodes), {});
  busy_ticks_ = 0;
  shared_ticks_ = 0;
}

void OccupancyMeter::advance(NodeId node, SimTime now) {
  NodeState& s = nodes_[static_cast<std::size_t>(node)];
  COSCHED_CHECK_MSG(now >= s.last, "occupancy meter clock went backwards on "
                                       << "node " << node);
  const std::int64_t delta = now - s.last;
  if (s.count >= 1) busy_ticks_ += delta;
  if (s.count >= 2) shared_ticks_ += delta;
  s.last = now;
}

void OccupancyMeter::occupy(const std::vector<NodeId>& nodes, SimTime now) {
  for (NodeId n : nodes) {
    advance(n, now);
    ++nodes_[static_cast<std::size_t>(n)].count;
  }
}

void OccupancyMeter::vacate(const std::vector<NodeId>& nodes, SimTime now) {
  for (NodeId n : nodes) {
    advance(n, now);
    NodeState& s = nodes_[static_cast<std::size_t>(n)];
    COSCHED_CHECK_MSG(s.count > 0, "vacating idle node " << n);
    --s.count;
  }
}

void StreamAccumulator::record(std::size_t submit_idx,
                               const workload::Job& job) {
  if (submit_idx >= rows_.size()) rows_.resize(submit_idx + 1);
  Row& row = rows_[submit_idx];
  COSCHED_CHECK_MSG(row.kind == 0, "job at submit index " << submit_idx
                                                          << " recorded twice");
  ++recorded_;
  if (!job.finished()) {  // cancelled: counts in jobs_total only
    row.kind = 3;
    return;
  }
  first_submit_ = std::min(first_submit_, job.submit_time);
  last_end_ = std::max(last_end_, job.end_time);
  row.wait_s = to_seconds(job.wait_time());
  row.slowdown = bounded_slowdown(job);
  row.dilation = job.observed_dilation;
  if (job.state == workload::JobState::kCompleted) {
    row.kind = 1;
    row.work_node_s = job.work_node_seconds();
  } else {
    row.kind = 2;
    row.work_node_s = static_cast<double>(job.nodes) *
                      to_seconds(job.end_time - job.start_time);
  }
}

ScheduleMetrics StreamAccumulator::finalize(int machine_nodes,
                                            const OccupancyMeter& meter,
                                            const EnergyParams& energy) const {
  COSCHED_CHECK(machine_nodes > 0);
  COSCHED_CHECK_MSG(recorded_ == rows_.size(),
                    "submit-index gaps: " << recorded_ << " rows recorded, "
                                          << rows_.size() << " indexed");
  ScheduleMetrics m;
  m.jobs_total = static_cast<int>(rows_.size());

  // Replay in submit order: the double folds below then associate exactly
  // like compute()'s loop over the materialized (submit-ordered) JobList.
  std::vector<double> waits, slowdowns, dilations;
  for (const Row& row : rows_) {
    if (row.kind == 0 || row.kind == 3) continue;
    if (row.kind == 1) {
      ++m.jobs_completed;
      m.total_work_node_s += row.work_node_s;
    } else {
      ++m.jobs_timeout;
      m.lost_work_node_s += row.work_node_s;
    }
    waits.push_back(row.wait_s);
    slowdowns.push_back(row.slowdown);
    dilations.push_back(row.dilation);
  }
  if (m.jobs_completed + m.jobs_timeout == 0) return m;

  m.makespan_s = to_seconds(last_end_ - first_submit_);
  m.busy_node_s = to_seconds(meter.busy_ticks());
  m.shared_node_s = to_seconds(meter.shared_ticks());

  const double machine_time = m.makespan_s * machine_nodes;
  m.scheduling_efficiency =
      machine_time > 0 ? m.total_work_node_s / machine_time : 0;
  m.computational_efficiency =
      m.busy_node_s > 0 ? m.total_work_node_s / m.busy_node_s : 0;
  m.utilization = machine_time > 0 ? m.busy_node_s / machine_time : 0;

  m.mean_wait_s = mean_of(waits);
  m.p95_wait_s = quantile(waits, 0.95);
  m.max_wait_s =
      waits.empty() ? 0 : *std::max_element(waits.begin(), waits.end());
  m.mean_bounded_slowdown = mean_of(slowdowns);
  m.p95_bounded_slowdown = quantile(slowdowns, 0.95);
  m.mean_dilation = mean_of(dilations);
  m.throughput_jobs_per_h =
      m.makespan_s > 0
          ? static_cast<double>(m.jobs_completed) / (m.makespan_s / 3600.0)
          : 0;

  const double idle_s = std::max(0.0, machine_time - m.busy_node_s);
  const double single_s = m.busy_node_s - m.shared_node_s;
  const double joules = energy.idle_w * idle_s + energy.primary_w * single_s +
                        energy.shared_w * m.shared_node_s;
  m.energy_kwh = joules / 3.6e6;
  m.work_node_h_per_kwh =
      m.energy_kwh > 0 ? (m.total_work_node_s / 3600.0) / m.energy_kwh : 0;
  return m;
}

}  // namespace cosched::metrics
