// Schedule validation: machine-checkable invariants over a finished
// schedule's job records. The test suite runs these after every
// simulation; downstream users can run them over replayed or imported
// schedules to catch inconsistent traces before computing metrics.
#pragma once

#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "workload/job.hpp"

namespace cosched::metrics {

/// One violated invariant.
struct Violation {
  JobId job = kInvalidJob;    ///< offending job (or kInvalidJob for node-level)
  NodeId node = kInvalidNode; ///< offending node (or kInvalidNode)
  std::string message;
};

struct ValidationOptions {
  int machine_nodes = 0;      ///< required
  int slots_per_node = 2;     ///< SMT degree: max co-resident jobs per node
  /// Tolerance when checking elapsed == base * dilation (fraction of base).
  double dilation_tolerance = 0.01;
};

/// Checks, for every finished job: timestamp ordering, allocation size,
/// node-id range, walltime compliance, dilation/work consistency; and per
/// node: occupancy depth never exceeding the slot count. Returns all
/// violations found (empty = valid schedule).
std::vector<Violation> validate_schedule(const workload::JobList& jobs,
                                         const ValidationOptions& options);

/// Convenience: formats violations one per line.
std::string to_string(const std::vector<Violation>& violations);

}  // namespace cosched::metrics
