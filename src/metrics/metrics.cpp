#include "metrics/metrics.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace cosched::metrics {

double bounded_slowdown(const workload::Job& job, double tau_s) {
  COSCHED_CHECK(job.finished());
  const double turnaround = to_seconds(job.turnaround());
  const double runtime = to_seconds(job.end_time - job.start_time);
  return std::max(1.0, turnaround / std::max(runtime, tau_s));
}

namespace {

/// Sums busy and shared (>= 2 jobs) node-seconds by sweeping per-node
/// occupancy-change events.
struct NodeTimeTotals {
  double busy_s = 0;
  double shared_s = 0;
};

NodeTimeTotals node_time_totals(const workload::JobList& jobs) {
  // Events per node: (+1 at start, -1 at end).
  std::map<NodeId, std::vector<std::pair<SimTime, int>>> events;
  for (const auto& job : jobs) {
    if (job.start_time < 0 || job.end_time < 0) continue;
    for (NodeId node : job.alloc_nodes) {
      events[node].emplace_back(job.start_time, +1);
      events[node].emplace_back(job.end_time, -1);
    }
  }
  NodeTimeTotals totals;
  for (auto& [node, evs] : events) {
    (void)node;
    std::sort(evs.begin(), evs.end());
    int depth = 0;
    SimTime prev = 0;
    for (const auto& [time, delta] : evs) {
      if (depth >= 1) totals.busy_s += to_seconds(time - prev);
      if (depth >= 2) totals.shared_s += to_seconds(time - prev);
      depth += delta;
      prev = time;
    }
    COSCHED_CHECK_MSG(depth == 0, "unbalanced occupancy on node " << node);
  }
  return totals;
}

}  // namespace

ScheduleMetrics compute(const workload::JobList& jobs, int machine_nodes,
                        const EnergyParams& energy) {
  COSCHED_CHECK(machine_nodes > 0);
  ScheduleMetrics m;
  m.jobs_total = static_cast<int>(jobs.size());

  SimTime first_submit = kTimeInfinity;
  SimTime last_end = 0;
  std::vector<double> waits, slowdowns, dilations;
  for (const auto& job : jobs) {
    if (!job.finished()) continue;
    first_submit = std::min(first_submit, job.submit_time);
    last_end = std::max(last_end, job.end_time);
    if (job.state == workload::JobState::kCompleted) {
      ++m.jobs_completed;
      m.total_work_node_s += job.work_node_seconds();
    } else {
      ++m.jobs_timeout;
      m.lost_work_node_s += static_cast<double>(job.nodes) *
                            to_seconds(job.end_time - job.start_time);
    }
    waits.push_back(to_seconds(job.wait_time()));
    slowdowns.push_back(bounded_slowdown(job));
    dilations.push_back(job.observed_dilation);
  }
  if (m.jobs_completed + m.jobs_timeout == 0) return m;

  m.makespan_s = to_seconds(last_end - first_submit);
  const auto totals = node_time_totals(jobs);
  m.busy_node_s = totals.busy_s;
  m.shared_node_s = totals.shared_s;

  const double machine_time = m.makespan_s * machine_nodes;
  m.scheduling_efficiency =
      machine_time > 0 ? m.total_work_node_s / machine_time : 0;
  m.computational_efficiency =
      m.busy_node_s > 0 ? m.total_work_node_s / m.busy_node_s : 0;
  m.utilization = machine_time > 0 ? m.busy_node_s / machine_time : 0;

  m.mean_wait_s = mean_of(waits);
  m.p95_wait_s = quantile(waits, 0.95);
  m.max_wait_s = waits.empty() ? 0 : *std::max_element(waits.begin(),
                                                       waits.end());
  m.mean_bounded_slowdown = mean_of(slowdowns);
  m.p95_bounded_slowdown = quantile(slowdowns, 0.95);
  m.mean_dilation = mean_of(dilations);
  m.throughput_jobs_per_h =
      m.makespan_s > 0
          ? static_cast<double>(m.jobs_completed) / (m.makespan_s / 3600.0)
          : 0;

  // Energy: nodes idle for (machine_time - busy), single-job for
  // (busy - shared), co-located for shared.
  const double idle_s = std::max(0.0, machine_time - m.busy_node_s);
  const double single_s = m.busy_node_s - m.shared_node_s;
  const double joules = energy.idle_w * idle_s + energy.primary_w * single_s +
                        energy.shared_w * m.shared_node_s;
  m.energy_kwh = joules / 3.6e6;
  m.work_node_h_per_kwh =
      m.energy_kwh > 0 ? (m.total_work_node_s / 3600.0) / m.energy_kwh : 0;
  return m;
}

}  // namespace cosched::metrics
