// Streaming schedule metrics for retire-mode runs.
//
// A flat-memory streaming run (Controller retiring finished-job state, see
// DESIGN "Fleet scale") never materializes the JobList that
// metrics::compute folds over, so the same quantities must be accumulated
// as jobs reach their final state. Two pieces cooperate:
//
//   StreamAccumulator — one fixed-size row per job, indexed by submit
//     order. Jobs retire in completion order, but compute() folds doubles
//     in submit order, and floating-point summation is order-sensitive;
//     replaying the rows in ascending submit index at finalize() makes
//     mean/percentile/total fields *bit-identical* to compute() on the
//     materialized records. The row is O(1) per job (4 doubles + a state
//     byte), which is the point: metrics stay exact while job records are
//     freed.
//
//   OccupancyMeter — per-node busy/shared node-time in integer SimTime
//     ticks, advanced at every allocation and release. compute() instead
//     sweeps per-node interval lists built from final job records, which
//     (a) accumulates in doubles per segment and (b) sees only the *last*
//     attempt of a requeued job. The meter's integer accumulation is exact
//     and covers every attempt, so busy/shared (and the efficiency /
//     utilization / energy fields derived from them) agree with compute()
//     to floating-point reassociation error on requeue-free runs and may
//     legitimately exceed it under requeues. All other fields are exact;
//     the differential test pins this contract.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/metrics.hpp"
#include "util/types.hpp"
#include "workload/job.hpp"

namespace cosched::metrics {

/// Exact integer node-occupancy meter. occupy()/vacate() must be called
/// with the simulation clock monotone (they are driven from controller
/// event handlers, which guarantee it).
class OccupancyMeter {
 public:
  void reset(int nodes);
  void occupy(const std::vector<NodeId>& nodes, SimTime now);
  void vacate(const std::vector<NodeId>& nodes, SimTime now);

  /// Total node-time with >= 1 job resident, in SimTime ticks.
  std::int64_t busy_ticks() const { return busy_ticks_; }
  /// Total node-time with >= 2 jobs resident (SMT sharing), in ticks.
  std::int64_t shared_ticks() const { return shared_ticks_; }

 private:
  void advance(NodeId node, SimTime now);

  struct NodeState {
    std::int32_t count = 0;
    SimTime last = 0;
  };
  std::vector<NodeState> nodes_;
  std::int64_t busy_ticks_ = 0;
  std::int64_t shared_ticks_ = 0;
};

/// Accumulates per-job final records as they retire and reproduces
/// metrics::compute() bit-for-bit (except the occupancy-derived fields —
/// see the header comment) without keeping the records alive.
class StreamAccumulator {
 public:
  /// Records job `job`'s final state. `submit_idx` is the job's position
  /// in submission order; rows may arrive in any order but each index must
  /// be recorded exactly once.
  void record(std::size_t submit_idx, const workload::Job& job);

  std::size_t recorded() const { return recorded_; }

  /// Folds the rows in submit order into the same quantities
  /// metrics::compute() derives, with busy/shared node-time taken from
  /// `meter`.
  ScheduleMetrics finalize(int machine_nodes, const OccupancyMeter& meter,
                           const EnergyParams& energy = {}) const;

 private:
  // kind: 0 = index not yet recorded, 1 = completed, 2 = timeout,
  // 3 = recorded but never finished (cancelled; jobs_total only).
  struct Row {
    double wait_s = 0;
    double slowdown = 0;
    double dilation = 0;
    double work_node_s = 0;  // work if completed, lost work if timeout
    std::uint8_t kind = 0;
  };
  std::vector<Row> rows_;
  std::size_t recorded_ = 0;
  SimTime first_submit_ = kTimeInfinity;  // min over finished jobs (exact)
  SimTime last_end_ = 0;                  // max over finished jobs (exact)
};

}  // namespace cosched::metrics
