// Schedule quality metrics.
//
// Definitions (matching the quantities the paper reports):
//
//   work(j)            = nodes_j * base_runtime_j   [node-seconds]: the
//                        exclusive cost of job j — what the machine must
//                        spend on it without sharing.
//   makespan           = max end - min submit over finished jobs.
//   scheduling efficiency = sum work / (makespan * machine_nodes):
//                        how densely the schedule packs useful work into
//                        the machine-time rectangle. Sharing raises it by
//                        overlapping jobs on SMT threads.
//   computational efficiency = sum work / busy node-seconds, where a
//                        node-second hosting any number of jobs counts
//                        once: useful work extracted per consumed machine
//                        node-second. Exactly 1.0 for exclusive schedules
//                        with perfect runtime knowledge; > 1 when SMT
//                        sharing extracts extra throughput; < 1 when
//                        interference outweighs overlap.
//   bounded slowdown   = max(1, turnaround / max(runtime, tau)), tau = 10 s.
#pragma once

#include <vector>

#include "util/types.hpp"
#include "workload/job.hpp"

namespace cosched::metrics {

/// Node power model for energy accounting. SMT sharing raises per-node
/// power (both thread sets active) but shortens the schedule; energy per
/// unit of useful work is the figure of merit.
struct EnergyParams {
  double idle_w = 100.0;    ///< node powered on, no job
  double primary_w = 220.0; ///< one job (primary hardware threads active)
  double shared_w = 280.0;  ///< co-located jobs (all SMT threads active)
};

struct ScheduleMetrics {
  int jobs_total = 0;
  int jobs_completed = 0;
  int jobs_timeout = 0;

  double makespan_s = 0;
  double total_work_node_s = 0;       ///< sum of work(j) over finished jobs
  double busy_node_s = 0;             ///< union of per-node busy intervals
  double lost_work_node_s = 0;        ///< node-time consumed by timed-out jobs

  double scheduling_efficiency = 0;   ///< work / (makespan * nodes)
  double computational_efficiency = 0;///< work / busy node-seconds
  double utilization = 0;             ///< busy node-seconds/(makespan*nodes)

  double mean_wait_s = 0;
  double p95_wait_s = 0;
  double max_wait_s = 0;
  double mean_bounded_slowdown = 0;
  double p95_bounded_slowdown = 0;
  double mean_dilation = 0;           ///< observed runtime / base runtime
  double shared_node_s = 0;           ///< node-seconds with >= 2 jobs resident
  double throughput_jobs_per_h = 0;

  /// Machine energy over the makespan under the EnergyParams power model.
  double energy_kwh = 0;
  /// Useful work delivered per energy: node-hours of work per kWh.
  double work_node_h_per_kwh = 0;
};

/// Computes metrics over finished jobs in `jobs` (pending/cancelled jobs are
/// counted in jobs_total only). `machine_nodes` is the machine size.
ScheduleMetrics compute(const workload::JobList& jobs, int machine_nodes,
                        const EnergyParams& energy = {});

/// Per-job bounded slowdown with the standard 10 s bound.
double bounded_slowdown(const workload::Job& job, double tau_s = 10.0);

}  // namespace cosched::metrics
