#include "obs/process_stats.hpp"

#include <fstream>
#include <thread>

#include "util/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define COSCHED_HAVE_GETRUSAGE 1
#endif

#if defined(__linux__)
#include <unistd.h>
#define COSCHED_HAVE_PROC_STATM 1
#endif

namespace cosched::obs {

ProcessStats process_stats() {
  ProcessStats stats;
#ifdef COSCHED_HAVE_GETRUSAGE
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#ifdef __APPLE__
    stats.max_rss_mb = static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    stats.max_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
    auto seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) +
             static_cast<double>(tv.tv_usec) / 1e6;
    };
    stats.user_cpu_s = seconds(usage.ru_utime);
    stats.sys_cpu_s = seconds(usage.ru_stime);
  }
#endif
  stats.hardware_concurrency =
      static_cast<int>(std::thread::hardware_concurrency());
  return stats;
}

double current_rss_mb() {
#ifdef COSCHED_HAVE_PROC_STATM
  // statm field 2 is resident pages; current (not peak), so repeated
  // samples can show a flat curve where getrusage's high-water mark only
  // shows the worst moment.
  std::ifstream statm("/proc/self/statm");
  long long total_pages = 0;
  long long resident_pages = 0;
  if (statm >> total_pages >> resident_pages) {
    const long page = sysconf(_SC_PAGESIZE);
    return static_cast<double>(resident_pages) *
           static_cast<double>(page > 0 ? page : 4096) / (1024.0 * 1024.0);
  }
#endif
  return 0;
}

void write_process_stats(JsonWriter& w, const char* key,
                         const ProcessStats& stats) {
  w.begin_object(key);
  w.value("max_rss_mb", stats.max_rss_mb);
  w.value("user_cpu_s", stats.user_cpu_s);
  w.value("sys_cpu_s", stats.sys_cpu_s);
  w.value("hardware_concurrency", stats.hardware_concurrency);
  w.end_object();
}

std::string process_stats_json(const ProcessStats& stats) {
  JsonWriter w;
  w.begin_object();
  w.value("max_rss_mb", stats.max_rss_mb);
  w.value("user_cpu_s", stats.user_cpu_s);
  w.value("sys_cpu_s", stats.sys_cpu_s);
  w.value("hardware_concurrency", stats.hardware_concurrency);
  w.end_object();
  return w.str();
}

}  // namespace cosched::obs
