#include "obs/manifest.hpp"

#include "util/json.hpp"

namespace cosched::obs {

std::string build_flavor() {
#ifdef NDEBUG
  std::string flavor = "release";
#else
  std::string flavor = "debug";
#endif
#if defined(__SANITIZE_ADDRESS__)
  flavor += ",asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  flavor += ",asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  flavor += ",tsan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  flavor += ",tsan";
#endif
#endif
  return flavor;
}

void write_manifest_fields(JsonWriter& w, const RunManifest& m,
                           bool include_execution) {
  w.value("tool", m.tool);
  w.value("command", m.command);
  w.value("strategy", m.strategy);
  w.value("queue_policy", m.queue_policy);
  w.value("event_queue", m.event_queue);
  w.value("workload", m.workload);
  w.value("seed", static_cast<std::int64_t>(m.seed));
  w.value("nodes", m.nodes);
  w.value("jobs", m.jobs);
  if (include_execution) {
    w.begin_object("execution");
    w.value("pass_threads", m.pass_threads);
    w.value("threads", m.threads);
    w.value("grain", m.grain);
    w.value("stream", m.stream);
    w.value("build", m.build.empty() ? build_flavor() : m.build);
    w.end_object();
  }
}

std::string manifest_json(const RunManifest& m, bool include_execution) {
  JsonWriter w;
  w.begin_object();
  write_manifest_fields(w, m, include_execution);
  w.end_object();
  return w.str();
}

}  // namespace cosched::obs
