// Job lifecycle spans: per-job submit → first_considered → scheduled →
// start → end timestamps with reason context, folded into fixed-bucket
// percentile sketches at end of life.
//
// The ledger is streaming: it holds one small OpenSpan per in-flight job
// and a constant-size sketch per latency class, so memory stays flat at
// fleet scale (ROADMAP item 5). Like the Registry it is share-nothing —
// one ledger per cell, merged bucket-wise afterwards — and observation
// never feeds back into scheduling, so digests are identical with spans
// on or off (pinned by tests/obs_test.cpp).
//
// Determinism contract: every timestamp is sim-time; the JSON dump orders
// fields statically and quantiles are integer-rank bucket lookups, so two
// identical runs serialize byte-identical span reports at any thread
// count (pinned by tests/pass_parity_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace cosched {
class JsonWriter;
}

namespace cosched::obs {

/// Fixed-bucket percentile sketch: observations land in the first bucket
/// whose upper bound is >= v (one implicit overflow bucket catches the
/// rest), and quantile queries return the upper bound of the bucket that
/// contains the requested rank. The error is therefore bounded by bucket
/// resolution, never by sample order — merge and quantile results are
/// independent of observation order, which is what makes the sketch safe
/// to fold share-nothing across cells.
class PercentileSketch {
 public:
  explicit PercentileSketch(std::vector<double> upper_bounds);

  void observe(double v);

  /// Adds another sketch's observations; bucket bounds must match.
  void merge_from(const PercentileSketch& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Upper bound of the bucket holding the observation at the given
  /// permille rank (ceil-rank, 1-based: permille=500 → p50). Returns
  /// false when the sketch is empty or the rank falls in the overflow
  /// bucket (serialized as "inf").
  bool quantile(int permille, double* out) const;

  /// {"count":N,"sum":S,"p50":...,"p90":...,"p99":...} with "inf" for
  /// overflow-bucket quantiles. Byte-deterministic.
  void write_json(JsonWriter& w, const std::string& key) const;

  /// Bucket bounds for sim-time quantities in seconds (sub-second through
  /// two days) and for dimensionless stretch factors.
  static std::vector<double> time_bounds();
  static std::vector<double> stretch_bounds();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;  ///< size = bounds + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// How a job's span ended.
enum class SpanEnd : std::int8_t {
  kComplete = 0,
  kTimeout,
  kCancelled,
};

/// Streaming per-job lifecycle ledger. The controller drives it from the
/// same hook sites that feed the Tracer:
///
///   on_submit           job enters the pending queue
///   on_first_considered a scheduler pass examined the job for the first
///                       time (requires every pass to run, so attaching a
///                       ledger disables the pass early-exit, exactly like
///                       attaching a tracer does)
///   on_start            job began executing (in the batch controller the
///                       scheduled and start timestamps coincide; the
///                       ledger records both so a future service mode with
///                       a dispatch delay reports them separately)
///   on_requeue          a running job was pushed back to pending
///   on_end              complete / timeout / cancelled
///
/// Completed and timed-out jobs that actually started fold wait, first-
/// consider latency, end-to-end latency, and stretch into the sketches;
/// cancelled jobs only count. Jobs still open at end of run are reported
/// as in-flight counts, not folded.
class SpanLedger {
 public:
  SpanLedger();
  SpanLedger(const SpanLedger&) = delete;
  SpanLedger& operator=(const SpanLedger&) = delete;

  void on_submit(JobId job, SimTime t);
  void on_first_considered(JobId job, SimTime t);
  void on_start(JobId job, SimTime t, bool secondary);
  void on_requeue(JobId job, SimTime t);
  void on_end(JobId job, SimTime t, SpanEnd how);

  /// True once `job` has been marked considered (used by the controller to
  /// skip the per-pass marking loop's map lookups after warm-up — callers
  /// may also just call on_first_considered idempotently).
  bool considered(JobId job) const;

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t ended() const { return completed_ + timed_out_ + cancelled_; }
  std::uint64_t open() const { return open_.size(); }

  const PercentileSketch& wait() const { return wait_s_; }
  const PercentileSketch& latency() const { return latency_s_; }
  const PercentileSketch& stretch() const { return stretch_; }
  const PercentileSketch& first_consider() const { return first_consider_s_; }

  /// Folds another cell's ledger in (counters add, sketches merge). Open
  /// spans stay per-cell: merge after the cells' runs have drained.
  void merge_from(const SpanLedger& other);

  /// The full ledger as one JSON document — static field order, integer
  /// rank quantiles; byte-deterministic for identical runs.
  std::string to_json() const;
  void write_json(JsonWriter& w) const;

 private:
  struct OpenSpan {
    SimTime submit = -1;
    SimTime first_considered = -1;
    SimTime scheduled = -1;
    SimTime start = -1;
    std::uint32_t requeues = 0;
    bool secondary = false;
  };

  std::unordered_map<JobId, OpenSpan> open_;
  std::uint64_t submitted_ = 0;
  std::uint64_t started_primary_ = 0;
  std::uint64_t started_secondary_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t requeues_ = 0;
  PercentileSketch wait_s_;
  PercentileSketch latency_s_;
  PercentileSketch stretch_;
  PercentileSketch first_consider_s_;
};

}  // namespace cosched::obs
