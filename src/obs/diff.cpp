#include "obs/diff.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/json.hpp"

namespace cosched::obs {
namespace {

std::vector<std::string> split_lines(const std::string& doc) {
  std::vector<std::string> lines;
  std::istringstream in(doc);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Parse a trace line; nullptr-kind (null JsonValue has kind kNull) can't
/// distinguish "parsed null" from "unparseable", so track success
/// separately.
bool try_parse(const std::string& line, JsonValue* out) {
  try {
    *out = parse_json(line);
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// Structural equality on parsed JSON (numbers as the parser's doubles —
/// both sides came through the same parser, so this is exact for any
/// value the writer can round-trip).
bool json_equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.as_bool() == b.as_bool();
    case JsonValue::Kind::kNumber: return a.as_number() == b.as_number();
    case JsonValue::Kind::kString: return a.as_string() == b.as_string();
    case JsonValue::Kind::kArray: {
      const auto& av = a.as_array();
      const auto& bv = b.as_array();
      if (av.size() != bv.size()) return false;
      for (std::size_t i = 0; i < av.size(); ++i) {
        if (!json_equal(av[i], bv[i])) return false;
      }
      return true;
    }
    case JsonValue::Kind::kObject: {
      if (a.keys() != b.keys()) return false;
      for (const std::string& key : a.keys()) {
        if (!json_equal(a.at(key), b.at(key))) return false;
      }
      return true;
    }
  }
  return false;
}

bool is_manifest(const JsonValue& v) {
  if (v.kind() != JsonValue::Kind::kObject) return false;
  const JsonValue* type = v.find("type");
  return type != nullptr && type->kind() == JsonValue::Kind::kString &&
         type->as_string() == "manifest";
}

/// Object equality ignoring the given key (manifest "execution" block:
/// runs required to agree byte-for-byte may legitimately differ there).
bool objects_equal_ignoring(const JsonValue& a, const JsonValue& b,
                            const std::string& ignored) {
  auto keys_of = [&ignored](const JsonValue& v) {
    std::vector<std::string> keys = v.keys();
    keys.erase(std::remove(keys.begin(), keys.end(), ignored), keys.end());
    return keys;
  };
  const auto a_keys = keys_of(a);
  if (a_keys != keys_of(b)) return false;
  for (const std::string& key : a_keys) {
    if (!json_equal(a.at(key), b.at(key))) return false;
  }
  return true;
}

/// Are two trace records the same, up to non-semantic metadata?
bool records_equal(const std::string& a_line, const std::string& b_line) {
  if (a_line == b_line) return true;
  JsonValue a;
  JsonValue b;
  if (!try_parse(a_line, &a) || !try_parse(b_line, &b)) return false;
  if (is_manifest(a) && is_manifest(b)) {
    return objects_equal_ignoring(a, b, "execution");
  }
  return json_equal(a, b);
}

void render_scalar(std::ostream& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out << "null"; break;
    case JsonValue::Kind::kBool: out << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::kNumber: {
      const double d = v.as_number();
      const auto i = static_cast<std::int64_t>(d);
      if (static_cast<double>(i) == d) {
        out << i;
      } else {
        out << d;
      }
      break;
    }
    case JsonValue::Kind::kString: out << '"' << v.as_string() << '"'; break;
    case JsonValue::Kind::kArray: {
      out << '[';
      const auto& items = v.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out << ',';
        render_scalar(out, items[i]);
      }
      out << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out << '{';
      bool first = true;
      for (const std::string& key : v.keys()) {
        if (!first) out << ' ';
        first = false;
        out << key << '=';
        render_scalar(out, v.at(key));
      }
      out << '}';
      break;
    }
  }
}

/// One record decoded to "type=... t_us=... field=value ...", with type
/// and t_us hoisted to the front so the eye lands on the event kind and
/// sim-time first. Unparseable lines render raw.
std::string decode(const std::string& line) {
  JsonValue v;
  if (!try_parse(line, &v) || v.kind() != JsonValue::Kind::kObject) {
    return line;
  }
  std::ostringstream out;
  const JsonValue* type = v.find("type");
  if (type != nullptr && type->kind() == JsonValue::Kind::kString) {
    out << "type=" << type->as_string();
  }
  const JsonValue* t = v.find("t_us");
  if (t != nullptr && t->kind() == JsonValue::Kind::kNumber) {
    out << " t_us=" << static_cast<std::int64_t>(t->as_number());
  }
  for (const std::string& key : v.keys()) {
    if (key == "type" || key == "t_us") continue;
    out << ' ' << key << '=';
    render_scalar(out, v.at(key));
  }
  return out.str();
}

/// First field (document order) whose values disagree between two parsed
/// records; empty when the difference is structural (key sets differ) or
/// the lines did not parse.
std::string first_differing_field(const std::string& a_line,
                                  const std::string& b_line,
                                  std::string* a_val, std::string* b_val) {
  JsonValue a;
  JsonValue b;
  if (!try_parse(a_line, &a) || !try_parse(b_line, &b)) return "";
  if (a.kind() != JsonValue::Kind::kObject ||
      b.kind() != JsonValue::Kind::kObject) {
    return "";
  }
  for (const std::string& key : a.keys()) {
    const JsonValue* other = b.find(key);
    if (other == nullptr) continue;
    if (!json_equal(a.at(key), *other)) {
      std::ostringstream av;
      std::ostringstream bv;
      render_scalar(av, a.at(key));
      render_scalar(bv, *other);
      *a_val = av.str();
      *b_val = bv.str();
      return key;
    }
  }
  return "";
}

/// Scheduler-pass context at a record index: scans the common prefix for
/// the nearest enclosing pass_begin/pass_end pair.
std::string pass_context(const std::vector<std::string>& lines,
                         std::size_t div) {
  std::int64_t pass = -1;
  std::size_t begin_at = 0;
  bool inside = false;
  for (std::size_t i = 0; i < div && i < lines.size(); ++i) {
    JsonValue v;
    if (!try_parse(lines[i], &v) || v.kind() != JsonValue::Kind::kObject) {
      continue;
    }
    const JsonValue* type = v.find("type");
    if (type == nullptr || type->kind() != JsonValue::Kind::kString) continue;
    if (type->as_string() == "pass_begin") {
      const JsonValue* p = v.find("pass");
      pass = p != nullptr ? static_cast<std::int64_t>(p->as_number()) : -1;
      begin_at = i;
      inside = true;
    } else if (type->as_string() == "pass_end") {
      inside = false;
    }
  }
  std::ostringstream out;
  if (inside) {
    out << "inside scheduler pass " << pass << " (pass_begin at record "
        << begin_at << ")";
  } else if (pass >= 0) {
    out << "between scheduler passes (last complete pass " << pass << ")";
  } else {
    out << "before the first scheduler pass";
  }
  return out.str();
}

}  // namespace

DiffResult diff_streams(const std::string& a_name, const std::string& a_jsonl,
                        const std::string& b_name, const std::string& b_jsonl,
                        const DiffOptions& opts) {
  const std::vector<std::string> a = split_lines(a_jsonl);
  const std::vector<std::string> b = split_lines(b_jsonl);
  const std::size_t shared = std::min(a.size(), b.size());

  DiffResult result;
  std::size_t div = shared;
  for (std::size_t i = 0; i < shared; ++i) {
    if (!records_equal(a[i], b[i])) {
      div = i;
      break;
    }
  }

  std::ostringstream out;
  out << "A: " << a_name << " (" << a.size() << " records)\n"
      << "B: " << b_name << " (" << b.size() << " records)\n";

  if (div == shared && a.size() == b.size()) {
    result.identical = true;
    result.first_divergence = a.size();
    out << "streams identical (" << a.size() << " records)\n";
    result.report = out.str();
    return result;
  }

  result.identical = false;
  result.first_divergence = div;
  out << "first divergence: record " << div << " (0-based)\n"
      << "  " << pass_context(a, div) << "\n";

  const auto context = static_cast<std::size_t>(std::max(opts.context, 0));
  const std::size_t from = div > context ? div - context : 0;
  if (from < div) {
    out << "  last records both streams agree on:\n";
    for (std::size_t i = from; i < div; ++i) {
      out << "    [" << i << "] " << decode(a[i]) << "\n";
    }
  }

  if (div < a.size() && div < b.size()) {
    out << "  A[" << div << "]: " << decode(a[div]) << "\n"
        << "  B[" << div << "]: " << decode(b[div]) << "\n";
    std::string a_val;
    std::string b_val;
    const std::string field =
        first_differing_field(a[div], b[div], &a_val, &b_val);
    if (!field.empty()) {
      out << "  first differing field: " << field << " (" << a_val << " vs "
          << b_val << ")\n";
    }
    out << "  A raw: " << a[div] << "\n"
        << "  B raw: " << b[div] << "\n";
  } else {
    // One stream is a strict prefix of the other.
    const bool a_longer = a.size() > b.size();
    const auto& longer = a_longer ? a : b;
    out << "  " << (a_longer ? "B" : "A")
        << " ends here; " << (a_longer ? "A" : "B") << " continues:\n";
    const std::size_t to = std::min(longer.size(), div + 1 + context);
    for (std::size_t i = div; i < to; ++i) {
      out << "    " << (a_longer ? "A" : "B") << "[" << i << "] "
          << decode(longer[i]) << "\n";
    }
  }

  for (const auto* side : {&a, &b}) {
    const char tag = side == &a ? 'A' : 'B';
    const std::size_t to = std::min(side->size(), div + 1 + context);
    if (div + 1 < to) {
      out << "  " << tag << " records after the divergence:\n";
      for (std::size_t i = div + 1; i < to; ++i) {
        out << "    " << tag << "[" << i << "] " << decode((*side)[i]) << "\n";
      }
    }
  }

  result.report = out.str();
  return result;
}

}  // namespace cosched::obs
