// Scheduler decision tracing: structured JSONL records keyed by sim-time.
//
// The tracer turns the simulator from an end-of-run aggregate into an
// instrument: every scheduler pass records what it considered, every
// co-allocation gate evaluation records why it accepted or rejected a
// pairing (ReasonCode), every backfill pass records the reservation it
// protected, and the machine records allocations and node-state changes.
// One record per line; each line is a complete JSON object with at least
// {"t_us": <sim-time in integer microseconds>, "type": "<record type>"}.
//
// Determinism contract (DESIGN.md "Observability"): records carry
// *sim-derived* data only — never wall-clock, never host state — so the
// trace of a seeded run is byte-identical across machines and thread
// counts, and diffing two traces is a meaningful debugging operation.
// Tracing is observation-only: no decision path reads the tracer, so
// digests and golden metrics are bit-identical with tracing on or off
// (pinned by tests/obs_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "sim/engine.hpp"
#include "util/types.hpp"

namespace cosched::obs {

/// Why a scheduling decision (co-allocation gate, backfill candidate test,
/// primary placement) went the way it did. kAccepted is the lone positive
/// outcome; everything else names the first fence the candidate hit.
enum class ReasonCode : std::int8_t {
  kAccepted = 0,             ///< decision admitted the candidate
  kCandidateNotShareable,    ///< candidate job or app refuses sharing
  kResidentNotShareable,     ///< a job already on the node refuses sharing
  kWalltimeFence,            ///< candidate's walltime end outlives a resident
  kDilationCap,              ///< predicted dilation exceeds max_dilation
  kBelowThreshold,           ///< combined throughput under 1 + theta
  kClassMismatch,            ///< class-rule gate: apps not complementary
  kInsufficientNodes,        ///< fewer admissible nodes than requested
  kCapacity,                 ///< not enough free primary nodes
  kBackfillWindow,           ///< start would delay the head reservation
  kBeyondDepth,              ///< past the backfill_depth test budget
};

inline constexpr int kReasonCodeCount =
    static_cast<int>(ReasonCode::kBeyondDepth) + 1;

const char* to_string(ReasonCode reason);

/// Per-reason tally for one candidate scan (indexed by ReasonCode).
struct ReasonCounts {
  int counts[kReasonCodeCount] = {};

  void add(ReasonCode reason) {
    ++counts[static_cast<std::size_t>(reason)];
  }

  /// Folds another tally in (per-shard scan counters merged share-nothing
  /// after a parallel candidate scan joins). Integer sums commute, but
  /// callers still fold shards in ascending shard order so every merged
  /// artifact — not just this one — shares the serial scan's order.
  void merge(const ReasonCounts& other) {
    for (int i = 0; i < kReasonCodeCount; ++i) {
      counts[i] += other.counts[i];
    }
  }
};

/// Collects trace records as serialized JSONL lines. One tracer per
/// simulation; the bound engine supplies the sim-time stamp on every
/// record (t_us = 0 until bind() — callers construct the tracer before the
/// engine exists and the controller binds it on construction). Lines
/// buffer in memory (a default 300-job run emits a few thousand lines) and
/// are written out by the caller at end of run.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(const sim::Engine& engine) : engine_(&engine) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Binds the engine whose clock stamps subsequent records. The engine
  /// must outlive the tracer or be replaced by another bind().
  void bind(const sim::Engine& engine) { engine_ = &engine; }

  /// Streams records to `sink` (newline-terminated, exactly the bytes
  /// str() would produce) instead of buffering them — O(1) tracer memory
  /// at million-job scale. Must be set before the first record; the sink
  /// must outlive the tracer. nullptr returns to buffering.
  void stream_to(std::ostream* sink);

  const std::vector<std::string>& lines() const { return lines_; }
  /// Records emitted so far, buffered or streamed.
  std::size_t size() const { return lines_.size() + streamed_; }

  /// All lines, newline-terminated (the JSONL document). Buffered mode
  /// only — a streaming tracer's bytes already went to the sink.
  std::string str() const;
  void write_file(const std::string& path) const;

  // --- Record emitters (schema documented in DESIGN.md) ----------------------

  /// Scheduler pass opening: queue depth and machine headroom it sees.
  void pass_begin(std::uint64_t pass, std::size_t pending,
                  std::size_t running, int free_primary, int free_secondary);
  /// Scheduler pass closing: starts this pass made.
  void pass_end(std::uint64_t pass, std::size_t primary_starts,
                std::size_t secondary_starts);

  void submit(JobId job, int nodes);
  /// `kind` is "primary" or "secondary"; wait is sim queue time.
  void start(JobId job, const char* kind, const std::vector<NodeId>& nodes,
             double wait_s);
  /// `type` is "complete" or "timeout".
  void finish(const char* type, JobId job, double dilation);

  /// One co-allocation candidate scan: how many nodes the gate examined,
  /// how many admitted, the outcome, and the per-reason rejection tally.
  /// `nodes` is the chosen placement when accepted, nullptr otherwise.
  void co_decision(JobId job, bool accepted, ReasonCode reason, int scanned,
                   int admissible, const std::vector<NodeId>* nodes,
                   const ReasonCounts& rejects);

  /// EASY-family backfill reservation for the queue head.
  void shadow(JobId head, SimTime shadow_time, int extra_nodes);
  /// A backfill candidate that did not start, and why.
  void backfill_reject(JobId job, ReasonCode reason);

  /// Machine-level records. `what` is "alloc_primary", "alloc_secondary",
  /// or "release".
  void machine_alloc(const char* what, JobId job,
                     const std::vector<NodeId>& nodes);
  void node_state(NodeId node, bool down);

  /// Raw engine event (label from the schedule site); emitted by
  /// EventTracer when engine-event tracing is on.
  void engine_event(SimTime when, sim::EventPriority priority,
                    sim::EventId id, const char* label);

  /// Run manifest header (obs/manifest.hpp), stamped t_us=0. Emitted by
  /// the CLI/bench harness as the first record; `cosched diff` ignores
  /// the nested execution block when comparing.
  void manifest(const RunManifest& m);

  /// Time-series gauge sample (obs/snapshot.hpp): `when` is the event
  /// time the sampler fired at, `tick` the period boundary it answers
  /// for.
  void snapshot(SimTime when, SimTime tick, int busy_nodes, int total_nodes,
                std::int64_t pending, std::int64_t running,
                std::int64_t resident_jobs, double utilization);

 private:
  class Record;  // one JSONL line under construction

  const sim::Engine* engine_ = nullptr;
  std::vector<std::string> lines_;
  std::ostream* sink_ = nullptr;  ///< non-owning; streaming mode when set
  std::size_t streamed_ = 0;      ///< records written directly to sink_
};

/// Engine observer that mirrors the executed event stream into the trace,
/// with the event-kind labels schedule sites attach. Registration order
/// does not matter: it only reads event metadata.
class EventTracer final : public sim::EventObserver {
 public:
  explicit EventTracer(Tracer& tracer) : tracer_(tracer) {}

  void on_event_executed(SimTime when, sim::EventPriority priority,
                         sim::EventId id, const char* label) override {
    tracer_.engine_event(when, priority, id, label);
  }

 private:
  Tracer& tracer_;
};

/// Converts a JSONL trace document to the Chrome trace_event format
/// (viewable in about:tracing / Perfetto): scheduler passes become
/// duration events, job lifetimes async events, everything else instants,
/// all keyed by sim-time (ts in microseconds). Throws cosched::Error on
/// lines the project JSON parser rejects.
std::string to_chrome_trace(const std::string& jsonl);

}  // namespace cosched::obs
