// Per-process resource accounting: peak RSS and CPU split, read once at
// the end of a run and reported through the standard metrics JSON.
//
// This replaces the ad-hoc getrusage probe that used to live inside
// bench_a8_scale: every bench (and `cosched sim --metrics-json`) now
// reports the same fields from the same source. Host-state reads are
// reporting-only by the usual contract — the values never feed back into
// scheduling — and they are wall-clock-class quantities, so artifacts
// that must be byte-compared across runs exclude them (the bench harness
// nests them under a "process" key; `cosched report` omits them).
#pragma once

#include <string>

namespace cosched {
class JsonWriter;
}

namespace cosched::obs {

struct ProcessStats {
  double max_rss_mb = 0;  ///< getrusage peak resident set, MiB
  double user_cpu_s = 0;
  double sys_cpu_s = 0;
  int hardware_concurrency = 0;  ///< std::thread::hardware_concurrency
};

/// Reads RUSAGE_SELF. Zeroes on platforms without getrusage.
ProcessStats process_stats();

/// The process's *current* (not peak) resident set in MiB, from
/// /proc/self/statm. Cheap enough to poll mid-run — the scaling bench
/// samples it at job-count checkpoints to show memory is flat, which peak
/// RSS alone cannot distinguish from an early spike. Returns 0 where
/// procfs is unavailable.
double current_rss_mb();

/// {"max_rss_mb":...,"user_cpu_s":...,"sys_cpu_s":...,
///  "hardware_concurrency":...} under `key` in an already-open object.
void write_process_stats(JsonWriter& w, const char* key,
                         const ProcessStats& stats);

/// The same fields as one standalone JSON object, for callers assembling
/// a document by string concatenation (the bench harness).
std::string process_stats_json(const ProcessStats& stats);

}  // namespace cosched::obs
