#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace cosched::obs {

const char* to_string(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kAccepted: return "accepted";
    case ReasonCode::kCandidateNotShareable: return "candidate_not_shareable";
    case ReasonCode::kResidentNotShareable: return "resident_not_shareable";
    case ReasonCode::kWalltimeFence: return "walltime_fence";
    case ReasonCode::kDilationCap: return "dilation_cap";
    case ReasonCode::kBelowThreshold: return "below_threshold";
    case ReasonCode::kClassMismatch: return "class_mismatch";
    case ReasonCode::kInsufficientNodes: return "insufficient_nodes";
    case ReasonCode::kCapacity: return "capacity";
    case ReasonCode::kBackfillWindow: return "backfill_window";
    case ReasonCode::kBeyondDepth: return "beyond_depth";
  }
  return "?";
}

/// One JSONL line under construction: opens the object and stamps the
/// common prefix; the destructor closes it and appends to the tracer.
class Tracer::Record {
 public:
  Record(Tracer& tracer, const char* type, SimTime when)
      : tracer_(tracer) {
    w_.begin_object();
    w_.value("t_us", when);
    w_.value("type", type);
  }
  Record(Tracer& tracer, const char* type)
      : Record(tracer, type,
               tracer.engine_ != nullptr ? tracer.engine_->now() : 0) {}
  ~Record() {
    w_.end_object();
    if (tracer_.sink_ != nullptr) {
      *tracer_.sink_ << w_.str() << '\n';
      ++tracer_.streamed_;
    } else {
      tracer_.lines_.push_back(w_.str());
    }
  }
  JsonWriter& w() { return w_; }

 private:
  Tracer& tracer_;
  JsonWriter w_;
};

namespace {

void write_nodes(JsonWriter& w, const std::vector<NodeId>& nodes) {
  w.begin_array("nodes");
  for (NodeId n : nodes) w.value(static_cast<double>(n));
  w.end_array();
}

}  // namespace

void Tracer::stream_to(std::ostream* sink) {
  COSCHED_REQUIRE(size() == 0 || sink == nullptr,
                  "stream_to must be set before the first trace record");
  sink_ = sink;
}

std::string Tracer::str() const {
  COSCHED_REQUIRE(streamed_ == 0,
                  "trace was streamed to a sink; its bytes are already there");
  std::ostringstream out;
  for (const std::string& line : lines_) out << line << '\n';
  return out.str();
}

void Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  COSCHED_REQUIRE(out.good(), "cannot write trace file '" << path << "'");
  out << str();
}

void Tracer::pass_begin(std::uint64_t pass, std::size_t pending,
                        std::size_t running, int free_primary,
                        int free_secondary) {
  Record r(*this, "pass_begin");
  r.w()
      .value("pass", static_cast<std::int64_t>(pass))
      .value("pending", static_cast<std::int64_t>(pending))
      .value("running", static_cast<std::int64_t>(running))
      .value("free_primary", free_primary)
      .value("free_secondary", free_secondary);
}

void Tracer::pass_end(std::uint64_t pass, std::size_t primary_starts,
                      std::size_t secondary_starts) {
  Record r(*this, "pass_end");
  r.w()
      .value("pass", static_cast<std::int64_t>(pass))
      .value("primary_starts", static_cast<std::int64_t>(primary_starts))
      .value("secondary_starts",
             static_cast<std::int64_t>(secondary_starts));
}

void Tracer::submit(JobId job, int nodes) {
  Record r(*this, "submit");
  r.w().value("job", job).value("nodes", nodes);
}

void Tracer::start(JobId job, const char* kind,
                   const std::vector<NodeId>& nodes, double wait_s) {
  Record r(*this, "start");
  r.w().value("job", job).value("kind", kind).value("wait_s", wait_s);
  write_nodes(r.w(), nodes);
}

void Tracer::finish(const char* type, JobId job, double dilation) {
  Record r(*this, type);
  r.w().value("job", job).value("dilation", dilation);
}

void Tracer::co_decision(JobId job, bool accepted, ReasonCode reason,
                         int scanned, int admissible,
                         const std::vector<NodeId>* nodes,
                         const ReasonCounts& rejects) {
  Record r(*this, "co_decision");
  r.w()
      .value("job", job)
      .value("accepted", accepted)
      .value("reason", to_string(reason))
      .value("scanned", scanned)
      .value("admissible", admissible);
  if (nodes != nullptr) write_nodes(r.w(), *nodes);
  r.w().begin_object("rejects");
  for (int i = 0; i < kReasonCodeCount; ++i) {
    if (rejects.counts[i] > 0) {
      r.w().value(to_string(static_cast<ReasonCode>(i)), rejects.counts[i]);
    }
  }
  r.w().end_object();
}

void Tracer::shadow(JobId head, SimTime shadow_time, int extra_nodes) {
  Record r(*this, "shadow");
  r.w()
      .value("head", head)
      .value("shadow_t_us", shadow_time)
      .value("extra_nodes", extra_nodes);
}

void Tracer::backfill_reject(JobId job, ReasonCode reason) {
  Record r(*this, "backfill_reject");
  r.w().value("job", job).value("reason", to_string(reason));
}

void Tracer::machine_alloc(const char* what, JobId job,
                           const std::vector<NodeId>& nodes) {
  Record r(*this, what);
  r.w().value("job", job);
  write_nodes(r.w(), nodes);
}

void Tracer::node_state(NodeId node, bool down) {
  Record r(*this, "node_state");
  r.w().value("node", node).value("down", down);
}

void Tracer::engine_event(SimTime when, sim::EventPriority priority,
                          sim::EventId id, const char* label) {
  Record r(*this, "event", when);
  r.w()
      .value("prio", static_cast<int>(priority))
      .value("id", static_cast<std::int64_t>(id))
      .value("label", label == nullptr ? "" : label);
}

void Tracer::manifest(const RunManifest& m) {
  Record r(*this, "manifest", /*when=*/0);
  write_manifest_fields(r.w(), m, /*include_execution=*/true);
}

void Tracer::snapshot(SimTime when, SimTime tick, int busy_nodes,
                      int total_nodes, std::int64_t pending,
                      std::int64_t running, std::int64_t resident_jobs,
                      double utilization) {
  Record r(*this, "snapshot", when);
  r.w()
      .value("tick_us", tick)
      .value("busy_nodes", busy_nodes)
      .value("total_nodes", total_nodes)
      .value("pending", pending)
      .value("running", running)
      .value("resident_jobs", resident_jobs)
      .value("utilization", utilization);
}

// --- Chrome trace_event conversion -------------------------------------------

std::string to_chrome_trace(const std::string& jsonl) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("traceEvents");

  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue record = parse_json(line);
    const std::string& type = record.at("type").as_string();
    const auto ts = static_cast<std::int64_t>(record.at("t_us").as_number());

    // Event shape by record type: scheduler passes become duration events,
    // job start..finish becomes an async span per job id, the rest render
    // as instants carrying the full record in args.
    const char* ph = "i";
    std::string name = type;
    std::int64_t async_id = 0;
    if (type == "pass_begin" || type == "pass_end") {
      ph = (type == "pass_begin") ? "B" : "E";
      name = "schedule_pass";
    } else if (type == "start") {
      ph = "b";
      async_id = static_cast<std::int64_t>(record.at("job").as_number());
      name = "job";
    } else if (type == "complete" || type == "timeout") {
      ph = "e";
      async_id = static_cast<std::int64_t>(record.at("job").as_number());
      name = "job";
    }

    w.begin_object();
    w.value("name", name);
    w.value("ph", ph);
    w.value("ts", ts);
    w.value("pid", 0);
    w.value("tid", 0);
    if (ph[0] == 'b' || ph[0] == 'e') {
      w.value("cat", "job");
      w.value("id", async_id);
    }
    if (ph[0] == 'i') {
      w.value("s", "g");  // global-scope instant
    }
    w.begin_object("args");
    for (const std::string& key : record.keys()) {
      if (key == "t_us" || key == "type") continue;
      const JsonValue& v = record.at(key);
      switch (v.kind()) {
        case JsonValue::Kind::kNumber:
          w.value(key, v.as_number());
          break;
        case JsonValue::Kind::kString:
          w.value(key, v.as_string());
          break;
        case JsonValue::Kind::kBool:
          w.value(key, v.as_bool());
          break;
        default:
          break;  // nested arrays/objects skipped in args
      }
    }
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.value("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

}  // namespace cosched::obs
