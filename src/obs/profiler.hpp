// Wall-clock phase profiler: RAII scopes aggregated per phase, per thread.
//
//   { COSCHED_PROF_SCOPE("schedule_pass"); ... }
//
// Scopes are free when profiling is disabled (one relaxed atomic load, no
// clock read) and cheap when enabled (two steady_clock reads plus a
// thread-local map update), so they may sit on warm paths. Each thread
// accumulates into its own record — worker threads of the ParallelRunner
// never contend — and profiler_report() renders the per-phase table after
// the work drained (the pool's batch completion is the synchronization
// point; snapshots during an active batch would race).
//
// Determinism contract: the profiler reads the HOST clock and therefore
// never touches simulated state, digests, traces, or golden metrics — it
// is reporting-only, enabled by the --profile flag. src/obs/ is the
// blessed wall-clock seam: the lint no-wallclock rule exempts this
// directory (and src/util/log) and bans clock reads everywhere else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cosched::obs {

/// Globally arms/disarms scope recording (default off). Flip before the
/// measured work; scopes already open keep the state they saw on entry.
void set_profiling_enabled(bool on);
bool profiling_enabled();

/// Clears all accumulated per-thread phase stats (thread records persist,
/// their tallies reset). Call between measured sections when reusing a
/// process for several experiments.
void profiler_reset();

struct PhaseStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// One thread's accumulated phases, sorted by phase name. `thread_index`
/// is the registration order of the thread's first profiled scope.
struct ThreadProfile {
  int thread_index = 0;
  std::vector<std::pair<std::string, PhaseStats>> phases;
};

/// Snapshot of every thread that ever profiled, sorted by thread index.
/// Only call when no profiled work is in flight.
std::vector<ThreadProfile> profiler_snapshot();

/// The per-phase wall-clock table (calls, total, mean, max, threads),
/// aggregated across threads and sorted by descending total time; empty
/// string when nothing was recorded.
std::string profiler_report();

namespace detail {
/// Host monotonic clock in nanoseconds (wall-clock; reporting only).
std::uint64_t prof_now_ns();
/// Adds one finished scope to the calling thread's record.
void prof_record(const char* phase, std::uint64_t elapsed_ns);
}  // namespace detail

/// RAII phase scope. `phase` must be a string with static storage duration
/// (a literal); the pointer is held until destruction.
class ProfScope {
 public:
  explicit ProfScope(const char* phase)
      : phase_(profiling_enabled() ? phase : nullptr),
        start_ns_(phase_ != nullptr ? detail::prof_now_ns() : 0) {}
  ~ProfScope() {
    if (phase_ != nullptr) {
      detail::prof_record(phase_, detail::prof_now_ns() - start_ns_);
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  const char* phase_;
  std::uint64_t start_ns_;
};

}  // namespace cosched::obs

#define COSCHED_PROF_CONCAT_INNER(a, b) a##b
#define COSCHED_PROF_CONCAT(a, b) COSCHED_PROF_CONCAT_INNER(a, b)
#define COSCHED_PROF_SCOPE(phase) \
  ::cosched::obs::ProfScope COSCHED_PROF_CONCAT(cosched_prof_, __LINE__)(phase)
