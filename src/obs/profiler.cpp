#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/table.hpp"

namespace cosched::obs {

namespace {

std::atomic<bool> g_profiling{false};

/// One thread's accumulation. Owned by the global list (so records survive
/// thread exit); written only by the owning thread, read by snapshots
/// after the work drained.
struct ThreadRecord {
  int index = 0;
  std::map<std::string, PhaseStats> phases;
};

struct ProfilerState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRecord>> threads;
};

ProfilerState& state() {
  static ProfilerState* s = new ProfilerState();  // leaked: outlive TLS dtors
  return *s;
}

ThreadRecord& thread_record() {
  thread_local ThreadRecord* record = [] {
    auto owned = std::make_unique<ThreadRecord>();
    ThreadRecord* raw = owned.get();
    ProfilerState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    raw->index = static_cast<int>(s.threads.size());
    s.threads.push_back(std::move(owned));
    return raw;
  }();
  return *record;
}

std::string fmt_ns(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

}  // namespace

void set_profiling_enabled(bool on) {
  g_profiling.store(on, std::memory_order_relaxed);
}

bool profiling_enabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void profiler_reset() {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& record : s.threads) record->phases.clear();
}

namespace detail {

std::uint64_t prof_now_ns() {
  // Host clock by design: the profiler measures real cost and never feeds
  // simulated state (see file comment in profiler.hpp).
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void prof_record(const char* phase, std::uint64_t elapsed_ns) {
  PhaseStats& stats = thread_record().phases[phase];
  ++stats.calls;
  stats.total_ns += elapsed_ns;
  stats.max_ns = std::max(stats.max_ns, elapsed_ns);
}

}  // namespace detail

std::vector<ThreadProfile> profiler_snapshot() {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<ThreadProfile> out;
  out.reserve(s.threads.size());
  for (const auto& record : s.threads) {
    if (record->phases.empty()) continue;
    ThreadProfile profile;
    profile.thread_index = record->index;
    profile.phases.assign(record->phases.begin(), record->phases.end());
    out.push_back(std::move(profile));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadProfile& a, const ThreadProfile& b) {
              return a.thread_index < b.thread_index;
            });
  return out;
}

std::string profiler_report() {
  const std::vector<ThreadProfile> threads = profiler_snapshot();
  if (threads.empty()) return "";

  struct Agg {
    PhaseStats stats;
    int thread_count = 0;
  };
  std::map<std::string, Agg> phases;
  for (const ThreadProfile& t : threads) {
    for (const auto& [name, stats] : t.phases) {
      Agg& agg = phases[name];
      agg.stats.calls += stats.calls;
      agg.stats.total_ns += stats.total_ns;
      agg.stats.max_ns = std::max(agg.stats.max_ns, stats.max_ns);
      ++agg.thread_count;
    }
  }

  std::vector<std::pair<std::string, Agg>> rows(phases.begin(), phases.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.stats.total_ns != b.second.stats.total_ns) {
      return a.second.stats.total_ns > b.second.stats.total_ns;
    }
    return a.first < b.first;
  });

  Table table({"phase", "calls", "total", "mean", "max", "threads"});
  for (const auto& [name, agg] : rows) {
    const double total = static_cast<double>(agg.stats.total_ns);
    table.row()
        .add(name)
        .add(static_cast<std::int64_t>(agg.stats.calls))
        .add(fmt_ns(total))
        .add(fmt_ns(agg.stats.calls > 0
                        ? total / static_cast<double>(agg.stats.calls)
                        : 0))
        .add(fmt_ns(static_cast<double>(agg.stats.max_ns)))
        .add(agg.thread_count);
  }

  std::ostringstream out;
  out << "=== wall-clock phase profile (" << threads.size()
      << " thread(s)) ===\n"
      << table.to_text();
  return out.str();
}

}  // namespace cosched::obs
