#include "obs/registry.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/json.hpp"

namespace cosched::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  COSCHED_REQUIRE(!upper_bounds_.empty(),
                  "histogram needs at least one bucket bound");
  COSCHED_REQUIRE(
      std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
      "histogram bucket bounds must be ascending");
}

void Histogram::observe(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::merge_from(const Histogram& other) {
  COSCHED_REQUIRE(upper_bounds_ == other.upper_bounds_,
                  "merging histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& Registry::counter(const std::string& name) {
  auto [it, fresh] = counters_.try_emplace(name);
  if (fresh) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  auto [it, fresh] = gauges_.try_emplace(name);
  if (fresh) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  auto [it, fresh] = histograms_.try_emplace(name);
  if (fresh) {
    it->second = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *it->second;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).add(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h->upper_bounds()).merge_from(*h);
  }
}

std::string Registry::to_json(bool include_wall) const {
  const auto skip = [include_wall](const std::string& name) {
    if (include_wall) return false;
    // Wall-clock-dependent instruments: `_wall_` infix or `_wall` suffix
    // by convention (see registry.hpp). Both are machine-load artifacts
    // that byte-compared dumps must not see.
    return name.find("_wall_") != std::string::npos ||
           (name.size() >= 5 && name.compare(name.size() - 5, 5, "_wall") == 0);
  };
  JsonWriter w;
  w.begin_object();
  w.begin_object("counters");
  for (const auto& [name, c] : counters_) {
    if (skip(name)) continue;
    w.value(name, static_cast<std::int64_t>(c->value()));
  }
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, g] : gauges_) {
    if (skip(name)) continue;
    w.value(name, g->value());
  }
  w.end_object();
  w.begin_object("histograms");
  for (const auto& [name, h] : histograms_) {
    if (skip(name)) continue;
    w.begin_object(name);
    w.value("count", static_cast<std::int64_t>(h->count()));
    w.value("sum", h->sum());
    w.begin_array("buckets");
    const auto& bounds = h->upper_bounds();
    const auto& counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      w.begin_object();
      if (i < bounds.size()) {
        w.value("le", bounds[i]);
      } else {
        w.value("le", "inf");
      }
      w.value("count", static_cast<std::int64_t>(counts[i]));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace cosched::obs
