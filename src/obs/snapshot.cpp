#include "obs/snapshot.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace cosched::obs {

SnapshotSampler::SnapshotSampler(const SnapshotSource& source,
                                 SimDuration period, Tracer* tracer,
                                 Registry* registry)
    : source_(source),
      period_(period),
      next_due_(period),
      tracer_(tracer),
      registry_(registry) {
  COSCHED_REQUIRE(period > 0, "snapshot period must be positive");
}

void SnapshotSampler::on_event_executed(SimTime when,
                                        sim::EventPriority /*priority*/,
                                        sim::EventId /*id*/,
                                        const char* /*label*/) {
  if (when < next_due_) return;
  const SnapshotSource::Sample s = source_.snapshot_sample();
  const double util =
      s.total_nodes > 0
          ? static_cast<double>(s.busy_nodes) / s.total_nodes
          : 0.0;
  // The tick this sample answers for is the last period boundary at or
  // before `when`; the next due tick is one period past it, so an idle
  // gap collapses to a single sample instead of a backlog.
  const SimTime tick = when - (when % period_);
  if (tracer_ != nullptr) {
    tracer_->snapshot(when, tick, s.busy_nodes, s.total_nodes, s.pending,
                      s.running, s.resident_jobs, util);
  }
  if (registry_ != nullptr) {
    registry_->counter("snapshots").inc();
    registry_->gauge("snapshot_utilization").set(util);
    registry_->gauge("snapshot_queue_depth")
        .set(static_cast<double>(s.pending));
    registry_->gauge("snapshot_running").set(static_cast<double>(s.running));
    registry_->gauge("snapshot_resident_jobs")
        .set(static_cast<double>(s.resident_jobs));
    registry_->gauge("snapshot_resident_jobs_peak")
        .set(std::max(registry_->gauge("snapshot_resident_jobs_peak").value(),
                      static_cast<double>(s.resident_jobs)));
    registry_
        ->histogram("snapshot_util_pct",
                    {10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
        .observe(util * 100.0);
  }
  next_due_ = tick + period_;
}

}  // namespace cosched::obs
