// Metrics registry: named counters, gauges, and fixed-bucket histograms
// that subsystems register into and a run dumps as JSON at the end.
//
// The registry is per-simulation (share-nothing, like every other piece of
// cell state): a sweep gives each cell its own Registry and merges them
// afterwards, so no instrument ever needs a lock. Instruments are created
// on first use and live as long as the registry; callers cache the
// returned references to keep hot-path observations at a pointer chase.
//
// Determinism contract: observing into a registry never feeds back into
// scheduling decisions, and the JSON dump orders instruments by name, so
// two identical runs serialize identical documents — except histograms or
// counters that record *wall-clock* or otherwise build-dependent
// quantities (scheduler pass latency, blocks skipped by an index variant,
// arena high-water marks), which are labelled with a `_wall_` infix or
// `_wall` suffix by convention and excluded from any byte-comparison
// (DESIGN.md "Observability").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cosched::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram (Prometheus-style cumulative-free layout): bucket
/// i counts observations v with v <= upper_bounds[i] that missed every
/// earlier bucket; one implicit overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Adds another histogram's observations; bucket bounds must match.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime (instruments are never removed).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies on creation; a later call with the same name
  /// returns the existing histogram (bounds argument ignored).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Sums `other` into this registry: counters and gauges add, histograms
  /// merge bucket-wise. Used to fold per-cell registries of a sweep.
  void merge_from(const Registry& other);

  /// The full registry as one JSON document, instruments sorted by name:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}. With
  /// `include_wall` false, instruments named by the `_wall_`/`_wall` convention
  /// are dropped — the filtered dump is byte-deterministic for identical
  /// runs and safe to byte-compare (`cosched report` uses it).
  std::string to_json(bool include_wall = true) const;

 private:
  // std::map keeps dump order deterministic; unique_ptr keeps references
  // stable across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cosched::obs
