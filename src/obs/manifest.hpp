// Run manifest: a deterministic self-describing header stamped into every
// trace, metrics, report, and bench JSON artifact.
//
// The manifest splits into two layers with different comparison
// semantics:
//
//   * decision identity — the fields that determine every scheduling
//     decision (strategy, seed, queue kinds, node/job counts, workload).
//     Two artifacts with equal decision identities must describe
//     byte-identical event streams; `cosched diff` treats a mismatch
//     here as a configuration error, not a divergence.
//
//   * execution — how the run was carried out (pass_threads, runner
//     threads, grain, streaming ingestion, build flavor). These may
//     differ between runs that are required to agree byte-for-byte
//     (that is the paper's whole claim), so `cosched diff` and
//     `cosched report` strip the execution block before comparing.
//
// Emission is a caller decision: the CLI / bench harness stamps the
// manifest as the first record; library code and tests that construct a
// Tracer directly get no manifest, so existing goldens are unaffected.
#pragma once

#include <cstdint>
#include <string>

namespace cosched {
class JsonWriter;
}

namespace cosched::obs {

struct RunManifest {
  // --- decision identity ---
  std::string tool = "cosched";  ///< producing binary ("cosched", a bench)
  std::string command;           ///< subcommand or bench cell name
  std::string strategy;
  std::string queue_policy;      ///< controller queue: "fifo" / "priority"
  std::string event_queue;       ///< engine queue: "heap" / "calendar"
  std::string workload;          ///< campaign name or SWF path
  std::uint64_t seed = 0;
  int nodes = 0;
  std::int64_t jobs = 0;

  // --- execution (non-semantic: stripped before byte-comparisons) ---
  int pass_threads = 1;
  int threads = 1;
  std::int64_t grain = 0;        ///< pass-executor min grain, 0 = serial
  bool stream = false;           ///< streaming job ingestion
  std::string build;             ///< compile-time flavor, see build_flavor()
};

/// Compile-time build flavor of the producing binary: "release" or
/// "debug", with ",asan"/",tsan" appended under those sanitizers. Stable
/// per build, so two artifacts from the same binary always agree.
std::string build_flavor();

/// Writes the manifest's fields into an already-open JSON object; the
/// execution block nests under an "execution" key and is omitted when
/// `include_execution` is false.
void write_manifest_fields(JsonWriter& w, const RunManifest& m,
                           bool include_execution);

/// The manifest as one standalone JSON object.
std::string manifest_json(const RunManifest& m, bool include_execution);

}  // namespace cosched::obs
