// Divergence forensics: align two JSONL trace streams, pinpoint the
// first divergent record, and render a decoded context window.
//
// A bare digest mismatch says "the runs differed"; this module says
// *where* — the record index and sim-time of the first divergence, the
// scheduler pass it happened inside, the first JSON field whose values
// disagree, and a few decoded records of surrounding context. Parity
// tests and CI route failing pairs through here so a broken PR ships a
// forensic report instead of two hashes.
//
// Alignment algorithm: traces are deterministic logs, so the streams are
// compared record-by-record in order after normalization — no LCS or
// fuzzy matching; the first normalized mismatch IS the divergence (every
// later mismatch is downstream fallout of it). Normalization strips the
// "execution" block from manifest records: two runs that differ only in
// pass_threads/threads/grain/build are *required* to produce otherwise
// identical streams, so execution metadata must not count as divergence.
#pragma once

#include <cstddef>
#include <string>

namespace cosched::obs {

struct DiffOptions {
  int context = 3;  ///< records shown on each side of the divergence
};

struct DiffResult {
  bool identical = false;
  /// 0-based record index of the first divergence (meaningful only when
  /// !identical). Equal to the shorter stream's size when one stream is
  /// a strict prefix of the other.
  std::size_t first_divergence = 0;
  /// Human-readable forensic report (always populated; one line when
  /// identical).
  std::string report;
};

/// Compares two JSONL documents record-by-record. Lines that fail to
/// parse as JSON are compared as raw text (so the tool degrades to a
/// line diff on non-trace input instead of refusing).
DiffResult diff_streams(const std::string& a_name, const std::string& a_jsonl,
                        const std::string& b_name, const std::string& b_jsonl,
                        const DiffOptions& opts = {});

}  // namespace cosched::obs
