// Time-series snapshots: gauges (utilization, queue depth, running
// count) sampled at a fixed sim-time cadence into the trace stream.
//
// The sampler rides the existing engine observer seam: after each
// executed event it checks whether the sim clock crossed the next sample
// tick and, if so, reads the controller's current state once and emits a
// single "snapshot" trace record. It never schedules engine events — an
// engine-side timer would consume EventIds and change digests — so idle
// stretches with no events produce no samples (the state is unchanged
// there anyway) and digest equality snapshots-on vs snapshots-off holds
// by construction (pinned by tests/obs_test.cpp).
#pragma once

#include "sim/engine.hpp"
#include "util/types.hpp"

namespace cosched::obs {

class Registry;
class Tracer;

/// What a snapshot reads. Implemented by the controller; the sampler
/// only ever calls this after an event executed, when controller state
/// is consistent.
class SnapshotSource {
 public:
  struct Sample {
    int total_nodes = 0;
    int busy_nodes = 0;       ///< nodes with at least one allocation
    std::int64_t pending = 0; ///< queue depth
    std::int64_t running = 0;
    /// Job records resident in controller memory. In retire mode this is
    /// the in-flight census (the flat-memory proof: it stays O(machine),
    /// not O(jobs ever submitted)); otherwise it grows with submissions.
    std::int64_t resident_jobs = 0;
  };

  virtual Sample snapshot_sample() const = 0;

 protected:
  ~SnapshotSource() = default;
};

/// Engine observer that samples a SnapshotSource every `period` of sim
/// time. Samples stamp the actual event time (keeping trace records in
/// sim-time order) plus the nominal tick they answer for; a gap longer
/// than one period emits one sample, not a backlog — gauges are
/// point-in-time reads, so catch-up samples would all repeat one value.
class SnapshotSampler final : public sim::EventObserver {
 public:
  SnapshotSampler(const SnapshotSource& source, SimDuration period,
                  Tracer* tracer, Registry* registry);

  void on_event_executed(SimTime when, sim::EventPriority priority,
                         sim::EventId id, const char* label) override;

 private:
  const SnapshotSource& source_;
  SimDuration period_;
  SimTime next_due_;
  Tracer* tracer_;      ///< may be null (registry-only sampling)
  Registry* registry_;  ///< may be null (trace-only sampling)
};

}  // namespace cosched::obs
