#include "obs/span.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/json.hpp"

namespace cosched::obs {

PercentileSketch::PercentileSketch(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  COSCHED_REQUIRE(!upper_bounds_.empty(),
                  "percentile sketch needs at least one bucket bound");
  COSCHED_REQUIRE(
      std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
      "percentile sketch bucket bounds must be ascending");
}

void PercentileSketch::observe(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += v;
}

void PercentileSketch::merge_from(const PercentileSketch& other) {
  COSCHED_REQUIRE(upper_bounds_ == other.upper_bounds_,
                  "merging sketches with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

bool PercentileSketch::quantile(int permille, double* out) const {
  COSCHED_REQUIRE(permille >= 1 && permille <= 1000,
                  "quantile permille out of range: " << permille);
  if (count_ == 0) return false;
  // Ceil rank in pure integer math: rank r such that the r-th smallest
  // observation (1-based) answers the query. No doubles, so the answer is
  // identical on every host.
  const std::uint64_t rank =
      (count_ * static_cast<std::uint64_t>(permille) + 999) / 1000;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      *out = upper_bounds_[i];
      return true;
    }
  }
  return false;  // rank lands in the overflow bucket
}

void PercentileSketch::write_json(JsonWriter& w,
                                  const std::string& key) const {
  w.begin_object(key);
  w.value("count", static_cast<std::int64_t>(count_));
  w.value("sum", sum_);
  for (const auto& [name, permille] :
       {std::pair<const char*, int>{"p50", 500}, {"p90", 900},
        {"p99", 990}}) {
    double q = 0;
    if (quantile(permille, &q)) {
      w.value(name, q);
    } else {
      w.value(name, count_ == 0 ? "none" : "inf");
    }
  }
  w.end_object();
}

std::vector<double> PercentileSketch::time_bounds() {
  // Sub-second through two days; geometric-ish 1-2-5 ladder so relative
  // error stays bounded across four orders of magnitude.
  return {0.0,    0.5,    1.0,    2.0,    5.0,     10.0,    30.0,
          60.0,   120.0,  300.0,  600.0,  1800.0,  3600.0,  7200.0,
          14400.0, 28800.0, 86400.0, 172800.0};
}

std::vector<double> PercentileSketch::stretch_bounds() {
  return {1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0};
}

SpanLedger::SpanLedger()
    : wait_s_(PercentileSketch::time_bounds()),
      latency_s_(PercentileSketch::time_bounds()),
      stretch_(PercentileSketch::stretch_bounds()),
      first_consider_s_(PercentileSketch::time_bounds()) {}

void SpanLedger::on_submit(JobId job, SimTime t) {
  OpenSpan& span = open_[job];
  span.submit = t;
  ++submitted_;
}

void SpanLedger::on_first_considered(JobId job, SimTime t) {
  const auto it = open_.find(job);
  if (it == open_.end()) return;
  if (it->second.first_considered < 0) it->second.first_considered = t;
}

void SpanLedger::on_start(JobId job, SimTime t, bool secondary) {
  const auto it = open_.find(job);
  if (it == open_.end()) return;
  // The batch controller dispatches in the same pass that schedules, so
  // the two stamps coincide today; a service mode with a dispatch queue
  // will set them apart.
  if (it->second.scheduled < 0) it->second.scheduled = t;
  it->second.start = t;
  it->second.secondary = secondary;
  if (secondary) {
    ++started_secondary_;
  } else {
    ++started_primary_;
  }
}

void SpanLedger::on_requeue(JobId job, SimTime /*t*/) {
  const auto it = open_.find(job);
  if (it == open_.end()) return;
  // Back to pending: the next start overwrites the start stamp, so the
  // folded wait measures submit -> final start (matching queue_wait_s).
  it->second.start = -1;
  ++it->second.requeues;
  ++requeues_;
}

void SpanLedger::on_end(JobId job, SimTime t, SpanEnd how) {
  const auto it = open_.find(job);
  if (it == open_.end()) return;  // e.g. cancel raced the submit record
  const OpenSpan span = it->second;
  open_.erase(it);
  switch (how) {
    case SpanEnd::kComplete: ++completed_; break;
    case SpanEnd::kTimeout: ++timed_out_; break;
    case SpanEnd::kCancelled: ++cancelled_; break;
  }
  if (how == SpanEnd::kCancelled || span.start < 0 || span.submit < 0) {
    return;  // never ran: nothing to fold
  }
  const double wait = to_seconds(span.start - span.submit);
  const double latency = to_seconds(t - span.submit);
  const double service = to_seconds(t - span.start);
  wait_s_.observe(wait);
  latency_s_.observe(latency);
  if (service > 0) stretch_.observe(latency / service);
  if (span.first_considered >= 0) {
    first_consider_s_.observe(to_seconds(span.first_considered - span.submit));
  }
}

bool SpanLedger::considered(JobId job) const {
  const auto it = open_.find(job);
  return it != open_.end() && it->second.first_considered >= 0;
}

void SpanLedger::merge_from(const SpanLedger& other) {
  submitted_ += other.submitted_;
  started_primary_ += other.started_primary_;
  started_secondary_ += other.started_secondary_;
  completed_ += other.completed_;
  timed_out_ += other.timed_out_;
  cancelled_ += other.cancelled_;
  requeues_ += other.requeues_;
  wait_s_.merge_from(other.wait_s_);
  latency_s_.merge_from(other.latency_s_);
  stretch_.merge_from(other.stretch_);
  first_consider_s_.merge_from(other.first_consider_s_);
}

void SpanLedger::write_json(JsonWriter& w) const {
  w.begin_object("jobs");
  w.value("submitted", static_cast<std::int64_t>(submitted_));
  w.value("started_primary", static_cast<std::int64_t>(started_primary_));
  w.value("started_secondary",
          static_cast<std::int64_t>(started_secondary_));
  w.value("completed", static_cast<std::int64_t>(completed_));
  w.value("timed_out", static_cast<std::int64_t>(timed_out_));
  w.value("cancelled", static_cast<std::int64_t>(cancelled_));
  w.value("requeues", static_cast<std::int64_t>(requeues_));
  w.value("open", static_cast<std::int64_t>(open_.size()));
  w.end_object();
  wait_s_.write_json(w, "wait_s");
  first_consider_s_.write_json(w, "first_consider_s");
  latency_s_.write_json(w, "latency_s");
  stretch_.write_json(w, "stretch");
}

std::string SpanLedger::to_json() const {
  JsonWriter w;
  w.begin_object();
  write_json(w);
  w.end_object();
  return w.str();
}

}  // namespace cosched::obs
